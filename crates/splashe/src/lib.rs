//! # seabed-splashe
//!
//! SPLASHE — SPLayed ASHE (Papadimitriou et al., OSDI 2016, §3.3–3.4 and
//! Appendix A.2), the defence Seabed deploys against frequency attacks on
//! deterministically encrypted dimensions.
//!
//! * [`basic`] — basic SPLASHE: splay a low-cardinality dimension (and each
//!   co-queried measure) into one ASHE column per value; fully semantically
//!   secure, storage grows by the cardinality.
//! * [`enhanced`] — enhanced SPLASHE: splay only the frequent values, route
//!   infrequent values through an "others" column plus a deterministic column
//!   whose histogram is flattened with dummy entries; leaks only the number of
//!   rows and the number of frequent/infrequent values.
//! * [`planner`] — the storage-budgeted planning step that decides which
//!   dimensions get SPLASHE (Figure 10b).
//! * [`attack`] — the Naveed-style frequency attack, used to demonstrate what
//!   DET leaks and what SPLASHE protects.

#![warn(missing_docs)]

pub mod attack;
pub mod basic;
pub mod enhanced;
pub mod planner;

pub use attack::{frequency_attack, AttackResult, AuxiliaryDistribution};
pub use basic::{basic_storage_factor, BasicSplashe, BasicSplayedColumns};
pub use enhanced::{plan_enhanced, EnhancedPlan, EnhancedSplashe, EnhancedSplayedColumns};
pub use planner::{overhead_curve, plan_under_budget, DimensionDecision, DimensionProfile, OverheadPoint};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn distribution_strategy() -> impl Strategy<Value = Vec<(String, u64)>> {
        proptest::collection::vec(1u64..200, 2..12).prop_map(|counts| {
            counts
                .into_iter()
                .enumerate()
                .map(|(i, c)| (format!("v{i}"), c))
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn enhanced_plan_is_always_feasible(dist in distribution_strategy()) {
            let plan = plan_enhanced(&dist);
            let count_of = |v: &String| dist.iter().find(|(x, _)| x == v).map(|(_, c)| *c).unwrap();
            let available: u64 = plan.frequent.iter().map(&count_of).sum();
            let needed: u64 = plan
                .infrequent
                .iter()
                .map(|v| plan.pad_target.saturating_sub(count_of(v)))
                .sum();
            prop_assert!(available >= needed, "k={} infeasible", plan.k());
            prop_assert_eq!(plan.cardinality(), dist.len());
        }

        #[test]
        fn enhanced_aggregates_match_plaintext(dist in distribution_strategy(), seed in any::<u64>()) {
            // Materialize rows following the distribution, with deterministic
            // pseudo-random measures.
            let mut rows: Vec<(String, u64)> = Vec::new();
            for (value, count) in &dist {
                for i in 0..*count {
                    rows.push((value.clone(), (i * 31 + seed % 1000) % 10_000));
                }
            }
            let plan = plan_enhanced(&dist);
            let keys: Vec<[u8; 16]> = (0..plan.k() + 1).map(|i| [i as u8 + 1; 16]).collect();
            let enc = EnhancedSplashe::new(plan, &[5u8; 32], keys);
            let cols = enc.encode_rows(&rows, 0, &mut rand::rng());

            let mut expected: HashMap<String, u64> = HashMap::new();
            for (v, m) in &rows {
                *expected.entry(v.clone()).or_insert(0) += m;
            }
            for (value, sum) in &expected {
                prop_assert_eq!(enc.sum_where(&cols, value), Some(*sum));
            }
        }

        #[test]
        fn enhanced_histogram_stays_flat(dist in distribution_strategy()) {
            let mut rows: Vec<(String, u64)> = Vec::new();
            for (value, count) in &dist {
                for _ in 0..*count {
                    rows.push((value.clone(), 1));
                }
            }
            let plan = plan_enhanced(&dist);
            // Skip the degenerate all-splayed case (no DET column to inspect).
            prop_assume!(plan.c() > 0);
            let keys: Vec<[u8; 16]> = (0..plan.k() + 1).map(|i| [i as u8 + 1; 16]).collect();
            let enc = EnhancedSplashe::new(plan, &[5u8; 32], keys);
            let cols = enc.encode_rows(&rows, 0, &mut rand::rng());
            let hist = cols.det_histogram();
            let max = *hist.values().max().unwrap();
            let min = *hist.values().min().unwrap();
            prop_assert!(max - min <= 1, "histogram spread {}-{}: {:?}", max, min, hist);
        }

        #[test]
        fn basic_splashe_counts_and_sums_match(counts in proptest::collection::vec(0u64..40, 2..6), seed in any::<u32>()) {
            let domain: Vec<String> = (0..counts.len()).map(|i| format!("d{i}")).collect();
            let mut rows = Vec::new();
            for (j, &c) in counts.iter().enumerate() {
                for i in 0..c {
                    rows.push((domain[j].clone(), (i + seed as u64) % 997));
                }
            }
            let keys: Vec<[u8; 16]> = (0..2 * domain.len()).map(|i| [i as u8 + 1; 16]).collect();
            let enc = BasicSplashe::new(domain.clone(), keys);
            let cols = enc.encode_rows(&rows, 100);
            for (j, value) in domain.iter().enumerate() {
                let expected_count = rows.iter().filter(|(v, _)| v == value).count() as u64;
                let expected_sum: u64 = rows.iter().filter(|(v, _)| v == value).map(|(_, m)| *m).sum();
                prop_assert_eq!(enc.count_where(&cols, value), Some(expected_count), "count col {}", j);
                prop_assert_eq!(enc.sum_where(&cols, value), Some(expected_sum), "sum col {}", j);
            }
        }

        #[test]
        fn det_attack_recovers_skewed_columns_splashe_does_not(skew in 2u64..20) {
            // Build a skewed column, attack its DET encoding (should succeed)
            // and a flattened encoding of the same data (should mostly fail).
            let values = ["A", "B", "C", "D"];
            let mut rows: Vec<String> = Vec::new();
            for (i, v) in values.iter().enumerate() {
                // Strictly decreasing counts so rank matching is unambiguous.
                let rank_bonus = (values.len() - i) as u64 * 1_000;
                let count = 10 + skew.pow((values.len() - i) as u32).min(5_000) + rank_bonus;
                for _ in 0..count {
                    rows.push(v.to_string());
                }
            }
            let det = seabed_crypto::DetScheme::new(&[9u8; 32]);
            let tags: Vec<u64> = rows.iter().map(|v| det.tag64_of(v.as_bytes())).collect();
            let mut aux_counts: HashMap<&str, u64> = HashMap::new();
            for r in &rows {
                *aux_counts.entry(values.iter().find(|v| *v == r).unwrap()).or_insert(0) += 1;
            }
            let aux = AuxiliaryDistribution::from_counts(aux_counts.iter().map(|(k, v)| (*k, *v)));
            let det_result = frequency_attack(&tags, &aux, &rows);
            prop_assert!(det_result.row_recovery_rate() > 0.99);

            // Flat (SPLASHE-like) encoding of the same rows.
            let flat_tags: Vec<u64> = (0..rows.len() as u64).map(|i| i % values.len() as u64).collect();
            let flat_result = frequency_attack(&flat_tags, &aux, &rows);
            prop_assert!(flat_result.row_recovery_rate() < 0.6);
        }
    }
}
