//! Enhanced SPLASHE (§3.4, Appendix A.2).
//!
//! Basic SPLASHE multiplies storage by the dimension's cardinality `d`, which
//! is wasteful when only a few values are common. Enhanced SPLASHE splays only
//! the `k` *frequent* values into their own ASHE measure columns, routes every
//! infrequent value through a single "others" measure column, and keeps one
//! deterministically-encrypted dimension column for equality filtering of the
//! infrequent values.
//!
//! The deterministic column would normally leak value frequencies; enhanced
//! SPLASHE prevents that by reusing the cells of rows holding *frequent*
//! values (whose DET cell is otherwise unused) to store *dummy* encryptions of
//! infrequent values, balancing every infrequent value's ciphertext count.
//! Dummy rows carry ASHE(0) in the "others" measure column, so aggregates stay
//! correct while the adversary sees a flat histogram and learns only the
//! number of rows `n`, the number of frequent values `j` and the number of
//! infrequent values `c` (Definition 1 in the appendix).

use rand::seq::SliceRandom;
use rand::Rng;
use seabed_ashe::{AsheScheme, EncryptedColumn};
use seabed_crypto::DetScheme;
use std::collections::HashMap;

/// The output of the enhanced-SPLASHE planning step for one dimension.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EnhancedPlan {
    /// The `k` frequent values, most frequent first; each gets its own column.
    pub frequent: Vec<String>,
    /// The `c = d - k` infrequent values sharing the "others" column.
    pub infrequent: Vec<String>,
    /// The balancing target: every infrequent value appears at least this many
    /// times in the deterministic column after padding.
    pub pad_target: u64,
}

impl EnhancedPlan {
    /// Number of splayed (frequent) values `k`.
    pub fn k(&self) -> usize {
        self.frequent.len()
    }

    /// Number of infrequent values `c`.
    pub fn c(&self) -> usize {
        self.infrequent.len()
    }

    /// Dimension cardinality `d`.
    pub fn cardinality(&self) -> usize {
        self.k() + self.c()
    }

    /// Storage expansion factor when this dimension is co-queried with
    /// `measures` measure columns: the dimension keeps one (DET) column and
    /// each measure expands into `k + 1` columns.
    pub fn storage_factor(&self, measures: usize) -> f64 {
        let plain = 1 + measures;
        let splayed = 1 + measures * (self.k() + 1);
        splayed as f64 / plain as f64
    }
}

/// Chooses the minimal number of splayed columns `k` such that the cells of
/// the frequent rows suffice to pad every infrequent value up to the most
/// frequent infrequent count (the condition
/// `Σ_{i≤k} n_i ≥ Σ_{i>k} (n_{k+1} − n_i)` from §3.4).
///
/// `distribution` maps each domain value to its (expected) number of
/// occurrences; the paper only needs the distribution, not exact counts.
pub fn plan_enhanced(distribution: &[(String, u64)]) -> EnhancedPlan {
    let mut sorted: Vec<(String, u64)> = distribution.to_vec();
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let counts: Vec<u64> = sorted.iter().map(|(_, c)| *c).collect();
    let d = sorted.len();
    if d == 0 {
        return EnhancedPlan {
            frequent: Vec::new(),
            infrequent: Vec::new(),
            pad_target: 0,
        };
    }
    let mut chosen_k = d; // fall back to splaying everything (pure basic)
    for k in 0..d {
        let available: u64 = counts[..k].iter().sum();
        let threshold = counts.get(k).copied().unwrap_or(0);
        let needed: u64 = counts[k..].iter().map(|&n| threshold - n).sum();
        if available >= needed {
            chosen_k = k;
            break;
        }
    }
    let pad_target = counts.get(chosen_k).copied().unwrap_or(0);
    EnhancedPlan {
        frequent: sorted[..chosen_k].iter().map(|(v, _)| v.clone()).collect(),
        infrequent: sorted[chosen_k..].iter().map(|(v, _)| v.clone()).collect(),
        pad_target,
    }
}

/// The encrypted, splayed representation produced by [`EnhancedSplashe`].
#[derive(Clone, Debug)]
pub struct EnhancedSplayedColumns {
    /// The plan used to produce these columns.
    pub plan: EnhancedPlan,
    /// Deterministic 64-bit equality tags, one per row (the `CountryDet`
    /// column of Figure 4). Rows whose value is frequent hold a dummy tag.
    pub det_column: Vec<u64>,
    /// `k + 1` measure columns: one per frequent value followed by "others".
    pub measures: Vec<EncryptedColumn>,
}

impl EnhancedSplayedColumns {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.det_column.len()
    }

    /// Histogram of the deterministic column's tags — what the adversary sees.
    pub fn det_histogram(&self) -> HashMap<u64, u64> {
        let mut h = HashMap::new();
        for &tag in &self.det_column {
            *h.entry(tag).or_insert(0) += 1;
        }
        h
    }
}

/// Encoder for enhanced SPLASHE over one dimension and one co-queried measure.
pub struct EnhancedSplashe {
    plan: EnhancedPlan,
    det: DetScheme,
    /// `k + 1` ASHE schemes, one per measure column (last = "others").
    measure_schemes: Vec<AsheScheme>,
}

impl EnhancedSplashe {
    /// Creates an encoder from a plan, a DET key and per-column ASHE keys
    /// (`plan.k() + 1` of them).
    pub fn new(plan: EnhancedPlan, det_key: &[u8; 32], measure_keys: Vec<[u8; 16]>) -> EnhancedSplashe {
        assert_eq!(
            measure_keys.len(),
            plan.k() + 1,
            "enhanced SPLASHE needs k + 1 measure-column keys"
        );
        EnhancedSplashe {
            plan,
            det: DetScheme::new(det_key),
            measure_schemes: measure_keys.iter().map(AsheScheme::new).collect(),
        }
    }

    /// The plan this encoder follows.
    pub fn plan(&self) -> &EnhancedPlan {
        &self.plan
    }

    /// Splays and encrypts rows of `(dimension value, measure value)` pairs.
    ///
    /// Dummy deterministic entries are assigned greedily to the currently
    /// least-represented infrequent value, which balances the histogram to
    /// within one occurrence whenever the plan's feasibility condition holds.
    pub fn encode_rows<R: Rng + ?Sized>(
        &self,
        rows: &[(String, u64)],
        start_id: u64,
        rng: &mut R,
    ) -> EnhancedSplayedColumns {
        let k = self.plan.k();
        let n_cols = k + 1;
        let mut measure_plain = vec![Vec::with_capacity(rows.len()); n_cols];
        // Tag for every infrequent value.
        let infrequent_tags: Vec<u64> = self
            .plan
            .infrequent
            .iter()
            .map(|v| self.det.tag64_of(v.as_bytes()))
            .collect();
        let mut det_column = Vec::with_capacity(rows.len());
        // Track real counts so dummies can balance them.
        let mut tag_counts: Vec<u64> = vec![0; infrequent_tags.len()];
        // Positions of rows whose DET cell is free for dummy reuse.
        let mut dummy_rows: Vec<usize> = Vec::new();

        for (row_idx, (value, measure)) in rows.iter().enumerate() {
            if let Some(j) = self.plan.frequent.iter().position(|v| v == value) {
                for (col, plain) in measure_plain.iter_mut().enumerate() {
                    plain.push(if col == j { *measure } else { 0 });
                }
                det_column.push(0); // placeholder, filled with a dummy below
                dummy_rows.push(row_idx);
            } else if let Some(j) = self.plan.infrequent.iter().position(|v| v == value) {
                for (col, plain) in measure_plain.iter_mut().enumerate() {
                    plain.push(if col == k { *measure } else { 0 });
                }
                det_column.push(infrequent_tags[j]);
                tag_counts[j] += 1;
            } else {
                panic!("value {value:?} not covered by the enhanced SPLASHE plan");
            }
        }

        // Fill the free DET cells with dummy encryptions that flatten the
        // histogram: repeatedly give the least-represented infrequent value
        // another occurrence. Shuffle the free rows so dummy placement is not
        // correlated with row order.
        if !infrequent_tags.is_empty() {
            dummy_rows.shuffle(rng);
            for row_idx in dummy_rows {
                let (min_idx, _) = tag_counts
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &c)| c)
                    .expect("at least one infrequent value");
                det_column[row_idx] = infrequent_tags[min_idx];
                tag_counts[min_idx] += 1;
            }
        }

        let measures = measure_plain
            .iter()
            .enumerate()
            .map(|(col, plain)| seabed_ashe::encrypt_column(&self.measure_schemes[col], plain, start_id))
            .collect();
        EnhancedSplayedColumns {
            plan: self.plan.clone(),
            det_column,
            measures,
        }
    }

    /// Answers `SELECT SUM(measure) WHERE dim = value`.
    ///
    /// Frequent values aggregate their dedicated column in full; infrequent
    /// values filter the deterministic column and aggregate the "others"
    /// column — exactly the two server-side strategies of §3.4.
    pub fn sum_where(&self, cols: &EnhancedSplayedColumns, value: &str) -> Option<u64> {
        let k = self.plan.k();
        if let Some(j) = self.plan.frequent.iter().position(|v| v == value) {
            let scheme = &self.measure_schemes[j];
            let agg = seabed_ashe::aggregate_where(scheme, &cols.measures[j], |_| true);
            return Some(scheme.decrypt(&agg));
        }
        if self.plan.infrequent.iter().any(|v| v == value) {
            let tag = self.det.tag64_of(value.as_bytes());
            let scheme = &self.measure_schemes[k];
            let agg = seabed_ashe::aggregate_where(scheme, &cols.measures[k], |i| cols.det_column[i] == tag);
            return Some(scheme.decrypt(&agg));
        }
        None
    }

    /// Answers `SELECT SUM(measure)` with no dimension predicate (all rows).
    pub fn sum_all(&self, cols: &EnhancedSplayedColumns) -> u64 {
        (0..=self.plan.k())
            .map(|col| {
                let scheme = &self.measure_schemes[col];
                scheme.decrypt(&seabed_ashe::aggregate_where(scheme, &cols.measures[col], |_| true))
            })
            .fold(0u64, |a, b| a.wrapping_add(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<[u8; 16]> {
        (0..n).map(|i| [i as u8 + 10; 16]).collect()
    }

    /// The Figure 4 dataset: USA and Canada frequent, eight other countries.
    fn figure4_rows() -> Vec<(String, u64)> {
        let raw: [(&str, u64); 14] = [
            ("USA", 100_000),
            ("USA", 100_000),
            ("Canada", 200_000),
            ("USA", 300_000),
            ("Canada", 500_000),
            ("Canada", 800_000),
            ("India", 100_000),
            ("India", 100_000),
            ("Chile", 200_000),
            ("Iraq", 300_000),
            ("China", 500_000),
            ("Japan", 800_000),
            ("Israel", 130_000),
            ("U.K.", 210_000),
        ];
        raw.iter().map(|(c, s)| (c.to_string(), *s)).collect()
    }

    fn figure4_distribution() -> Vec<(String, u64)> {
        let mut counts: HashMap<String, u64> = HashMap::new();
        for (c, _) in figure4_rows() {
            *counts.entry(c).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    #[test]
    fn plan_selects_frequent_values() {
        let plan = plan_enhanced(&figure4_distribution());
        // USA (3) and Canada (3) dominate; the rest occur once or twice.
        assert!(plan.frequent.contains(&"USA".to_string()));
        assert!(plan.frequent.contains(&"Canada".to_string()));
        assert_eq!(plan.cardinality(), 9);
        assert!(
            plan.k() <= 3,
            "should not splay infrequent countries, got k={}",
            plan.k()
        );
    }

    #[test]
    fn plan_feasibility_condition_holds() {
        // Whatever k the planner picks, the frequent rows must supply enough
        // dummy cells to pad every infrequent value to the pad target.
        let dist = figure4_distribution();
        let plan = plan_enhanced(&dist);
        let count_of = |v: &String| dist.iter().find(|(x, _)| x == v).unwrap().1;
        let available: u64 = plan.frequent.iter().map(count_of).sum();
        let needed: u64 = plan.infrequent.iter().map(|v| plan.pad_target - count_of(v)).sum();
        assert!(available >= needed, "available {available} < needed {needed}");
    }

    #[test]
    fn skewed_distribution_needs_few_columns() {
        // 2 heavy hitters out of 196 countries (the k=2, d=196 example).
        let mut dist: Vec<(String, u64)> = vec![("USA".into(), 100_000), ("Canada".into(), 80_000)];
        for i in 0..194 {
            dist.push((format!("Country{i}"), 50 + (i % 7) as u64));
        }
        let plan = plan_enhanced(&dist);
        assert!(
            plan.k() <= 3,
            "heavily skewed distribution should need k≈2, got {}",
            plan.k()
        );
        assert!(plan.storage_factor(1) < 3.0);
    }

    #[test]
    fn uniform_distribution_needs_no_splaying() {
        let dist: Vec<(String, u64)> = (0..20).map(|i| (format!("v{i}"), 100)).collect();
        let plan = plan_enhanced(&dist);
        assert_eq!(plan.k(), 0, "a uniform distribution is already flat");
    }

    fn encoder() -> EnhancedSplashe {
        let plan = plan_enhanced(&figure4_distribution());
        let n_keys = plan.k() + 1;
        EnhancedSplashe::new(plan, &[7u8; 32], keys(n_keys))
    }

    #[test]
    fn aggregates_match_plaintext_for_all_values() {
        let enc = encoder();
        let rows = figure4_rows();
        let cols = enc.encode_rows(&rows, 0, &mut rand::rng());
        let mut expected: HashMap<String, u64> = HashMap::new();
        for (c, s) in &rows {
            *expected.entry(c.clone()).or_insert(0) += s;
        }
        for (value, sum) in &expected {
            assert_eq!(enc.sum_where(&cols, value), Some(*sum), "sum for {value}");
        }
        assert_eq!(enc.sum_where(&cols, "Atlantis"), None);
        assert_eq!(enc.sum_all(&cols), rows.iter().map(|(_, s)| s).sum::<u64>());
    }

    #[test]
    fn det_histogram_is_flat() {
        // The core security property: every infrequent value's tag appears the
        // same number of times (±1) regardless of its true frequency.
        let enc = encoder();
        let cols = enc.encode_rows(&figure4_rows(), 0, &mut rand::rng());
        let hist = cols.det_histogram();
        assert_eq!(hist.len(), enc.plan().c(), "one tag per infrequent value");
        let max = hist.values().max().unwrap();
        let min = hist.values().min().unwrap();
        assert!(max - min <= 1, "histogram not flat: {hist:?}");
    }

    #[test]
    fn dummies_do_not_pollute_aggregates() {
        // A frequent row reused as a dummy "India" entry must contribute 0 to
        // India's sum: compare against plaintext truth for a larger dataset.
        let mut dist: Vec<(String, u64)> = vec![("Hot".into(), 600), ("A".into(), 30), ("B".into(), 10)];
        dist.sort_by_key(|d| std::cmp::Reverse(d.1));
        let plan = plan_enhanced(&dist);
        let enc = EnhancedSplashe::new(plan.clone(), &[9u8; 32], keys(plan.k() + 1));
        let mut rows = Vec::new();
        for i in 0..600u64 {
            rows.push(("Hot".to_string(), i));
        }
        for i in 0..30u64 {
            rows.push(("A".to_string(), 1000 + i));
        }
        for i in 0..10u64 {
            rows.push(("B".to_string(), 5000 + i));
        }
        let cols = enc.encode_rows(&rows, 0, &mut rand::rng());
        let sum_a: u64 = (0..30u64).map(|i| 1000 + i).sum();
        let sum_b: u64 = (0..10u64).map(|i| 5000 + i).sum();
        let sum_hot: u64 = (0..600).sum();
        assert_eq!(enc.sum_where(&cols, "A"), Some(sum_a));
        assert_eq!(enc.sum_where(&cols, "B"), Some(sum_b));
        assert_eq!(enc.sum_where(&cols, "Hot"), Some(sum_hot));
        // And the histogram hides that B is 3x rarer than A.
        let hist = cols.det_histogram();
        let max = hist.values().max().unwrap();
        let min = hist.values().min().unwrap();
        assert!(max - min <= 1, "histogram not flat: {hist:?}");
    }

    #[test]
    fn storage_factor_is_much_smaller_than_basic() {
        let plan = plan_enhanced(&figure4_distribution());
        let enhanced = plan.storage_factor(1);
        let basic = crate::basic::basic_storage_factor(plan.cardinality(), 1);
        assert!(enhanced < basic, "enhanced {enhanced} should beat basic {basic}");
    }

    #[test]
    #[should_panic]
    fn unknown_value_panics() {
        let enc = encoder();
        enc.encode_rows(&[("Narnia".to_string(), 1)], 0, &mut rand::rng());
    }

    #[test]
    fn empty_distribution_is_handled() {
        let plan = plan_enhanced(&[]);
        assert_eq!(plan.k(), 0);
        assert_eq!(plan.c(), 0);
    }
}
