//! Frequency-attack simulator (the threat SPLASHE is designed to stop).
//!
//! Naveed, Kamara and Wright showed that deterministically encrypted columns
//! can be decoded by matching ciphertext frequencies against auxiliary
//! plaintext statistics [36]. This module reproduces the rank-matching attack:
//! the adversary sorts the observed ciphertext histogram and a public
//! auxiliary distribution by frequency and pairs them up. Run against plain
//! DET columns the attack recovers most values; run against enhanced-SPLASHE
//! columns (whose histogram is flattened by dummy entries) it degrades to
//! guessing.

use std::collections::HashMap;

/// The adversary's auxiliary knowledge: an estimate of how often each
/// plaintext value occurs in the population.
#[derive(Clone, Debug, Default)]
pub struct AuxiliaryDistribution {
    /// (plaintext value, estimated relative frequency or count)
    pub weights: Vec<(String, f64)>,
}

impl AuxiliaryDistribution {
    /// Builds auxiliary knowledge from exact plaintext counts (the strongest
    /// adversary the paper considers).
    pub fn from_counts<'a, I: IntoIterator<Item = (&'a str, u64)>>(counts: I) -> Self {
        AuxiliaryDistribution {
            weights: counts.into_iter().map(|(v, c)| (v.to_string(), c as f64)).collect(),
        }
    }
}

/// The outcome of a frequency attack.
#[derive(Clone, Debug)]
pub struct AttackResult {
    /// For each ciphertext tag: the plaintext the attacker guessed.
    pub guesses: HashMap<u64, String>,
    /// Number of *rows* whose value the attacker recovered correctly.
    pub rows_recovered: usize,
    /// Total number of rows attacked.
    pub rows_total: usize,
    /// Number of distinct values guessed correctly.
    pub values_recovered: usize,
    /// Number of distinct values in the ground truth.
    pub values_total: usize,
}

impl AttackResult {
    /// Fraction of rows decoded correctly.
    pub fn row_recovery_rate(&self) -> f64 {
        if self.rows_total == 0 {
            0.0
        } else {
            self.rows_recovered as f64 / self.rows_total as f64
        }
    }

    /// Fraction of distinct values decoded correctly.
    pub fn value_recovery_rate(&self) -> f64 {
        if self.values_total == 0 {
            0.0
        } else {
            self.values_recovered as f64 / self.values_total as f64
        }
    }
}

/// Runs the rank-matching frequency attack.
///
/// * `ciphertext_column` — the deterministic tags the adversary observes, one
///   per row (e.g. [`DetCiphertext::tag64`](seabed_crypto::DetCiphertext::tag64)
///   values, or the balanced column enhanced SPLASHE produces);
/// * `auxiliary` — the adversary's estimate of the plaintext distribution;
/// * `ground_truth` — the actual plaintext of every row, used only to score
///   the attack.
pub fn frequency_attack(
    ciphertext_column: &[u64],
    auxiliary: &AuxiliaryDistribution,
    ground_truth: &[String],
) -> AttackResult {
    assert_eq!(ciphertext_column.len(), ground_truth.len());

    // Histogram of observed ciphertexts, sorted most-frequent first.
    let mut ct_hist: HashMap<u64, u64> = HashMap::new();
    for &tag in ciphertext_column {
        *ct_hist.entry(tag).or_insert(0) += 1;
    }
    let mut ct_ranked: Vec<(u64, u64)> = ct_hist.into_iter().collect();
    ct_ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    // Auxiliary distribution, sorted most-frequent first.
    let mut aux_ranked = auxiliary.weights.clone();
    aux_ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));

    // Rank matching: i-th most common ciphertext = i-th most common value.
    let mut guesses: HashMap<u64, String> = HashMap::new();
    for (i, (tag, _)) in ct_ranked.iter().enumerate() {
        if let Some((value, _)) = aux_ranked.get(i) {
            guesses.insert(*tag, value.clone());
        }
    }

    // Score.
    let mut rows_recovered = 0usize;
    let mut correct_per_value: HashMap<&str, bool> = HashMap::new();
    for (tag, truth) in ciphertext_column.iter().zip(ground_truth.iter()) {
        let correct = guesses.get(tag).map(|g| g == truth).unwrap_or(false);
        if correct {
            rows_recovered += 1;
        }
        let entry = correct_per_value.entry(truth.as_str()).or_insert(false);
        *entry = *entry || correct;
    }
    let values_total = ground_truth.iter().collect::<std::collections::HashSet<_>>().len();
    let values_recovered = correct_per_value.values().filter(|&&v| v).count();

    AttackResult {
        guesses,
        rows_recovered,
        rows_total: ground_truth.len(),
        values_recovered,
        values_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seabed_crypto::DetScheme;

    /// A skewed population: the attack's favourite target.
    fn skewed_rows() -> Vec<String> {
        let mut rows = Vec::new();
        for (value, count) in [
            ("USA", 500),
            ("Canada", 300),
            ("India", 120),
            ("Chile", 60),
            ("Iraq", 20),
        ] {
            for _ in 0..count {
                rows.push(value.to_string());
            }
        }
        rows
    }

    fn auxiliary() -> AuxiliaryDistribution {
        AuxiliaryDistribution::from_counts([
            ("USA", 500u64),
            ("Canada", 300),
            ("India", 120),
            ("Chile", 60),
            ("Iraq", 20),
        ])
    }

    #[test]
    fn det_column_is_fully_recovered() {
        let rows = skewed_rows();
        let det = DetScheme::new(&[1u8; 32]);
        let tags: Vec<u64> = rows.iter().map(|v| det.tag64_of(v.as_bytes())).collect();
        let result = frequency_attack(&tags, &auxiliary(), &rows);
        assert_eq!(result.value_recovery_rate(), 1.0, "DET leaks every value");
        assert_eq!(result.row_recovery_rate(), 1.0);
    }

    #[test]
    fn flat_histogram_defeats_rank_matching() {
        // Simulate what enhanced SPLASHE produces: every tag appears equally
        // often, so rank matching degenerates to an arbitrary assignment and
        // cannot recover the skew.
        let rows = skewed_rows();
        let n = rows.len() as u64;
        let distinct = 5u64;
        // Balanced column: tags 0..5 each appearing n/5 times, assigned in a
        // round-robin unrelated to the true value.
        let tags: Vec<u64> = (0..n).map(|i| i % distinct).collect();
        let result = frequency_attack(&tags, &auxiliary(), &rows);
        // The attacker can still get lucky on one value, but nowhere near full
        // recovery: with a flat histogram each guess covers 1/5 of rows and
        // values no longer correlate with rank.
        assert!(
            result.row_recovery_rate() < 0.5,
            "flat histogram should destroy row recovery, got {}",
            result.row_recovery_rate()
        );
    }

    #[test]
    fn imperfect_auxiliary_still_breaks_det_mostly() {
        // Even a noisy auxiliary estimate (ranks preserved) decodes DET.
        let rows = skewed_rows();
        let det = DetScheme::new(&[2u8; 32]);
        let tags: Vec<u64> = rows.iter().map(|v| det.tag64_of(v.as_bytes())).collect();
        let noisy = AuxiliaryDistribution::from_counts([
            ("USA", 430u64),
            ("Canada", 350),
            ("India", 100),
            ("Chile", 80),
            ("Iraq", 10),
        ]);
        let result = frequency_attack(&tags, &noisy, &rows);
        assert_eq!(result.value_recovery_rate(), 1.0);
    }

    #[test]
    fn attack_handles_more_ciphertexts_than_auxiliary_values() {
        let rows: Vec<String> = (0..50).map(|i| format!("v{}", i % 10)).collect();
        let det = DetScheme::new(&[3u8; 32]);
        let tags: Vec<u64> = rows.iter().map(|v| det.tag64_of(v.as_bytes())).collect();
        let aux = AuxiliaryDistribution::from_counts([("v0", 5u64), ("v1", 5)]);
        let result = frequency_attack(&tags, &aux, &rows);
        assert!(result.rows_total == 50);
        assert!(result.row_recovery_rate() <= 0.2);
    }

    #[test]
    fn empty_input() {
        let result = frequency_attack(&[], &AuxiliaryDistribution::default(), &[]);
        assert_eq!(result.row_recovery_rate(), 0.0);
        assert_eq!(result.value_recovery_rate(), 0.0);
    }
}
