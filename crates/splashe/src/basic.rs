//! Basic SPLASHE (§3.3).
//!
//! A low-cardinality dimension `C1` (say, `gender`) that would otherwise need
//! deterministic encryption is *splayed* into `d` indicator columns
//! `C1,1 … C1,d`, and every measure `C2` queried together with it is splayed
//! into `d` measure columns `C2,1 … C2,d`. Row `t` with `C1[t] = v` stores a
//! 1 in `C1,v` (0 elsewhere) and its measure value in `C2,v` (0 elsewhere).
//! All splayed columns are ASHE-encrypted, so nothing about the dimension's
//! value frequencies is revealed, yet
//!
//! * `SELECT COUNT(*) WHERE C1 = v`  ⇒  `SELECT SUM(C1,v)` and
//! * `SELECT SUM(C2) WHERE C1 = v`   ⇒  `SELECT SUM(C2,v)`
//!
//! are answerable with homomorphic addition alone.

use seabed_ashe::{AsheScheme, EncryptedColumn};

/// The splayed, encrypted representation of one (dimension, measure) pair.
#[derive(Clone, Debug)]
pub struct BasicSplayedColumns {
    /// The dimension's domain, in column order (`domain[j]` backs column `j`).
    pub domain: Vec<String>,
    /// Indicator columns: `indicator[j]` holds ASHE(1) where the row's value
    /// is `domain[j]` and ASHE(0) elsewhere.
    pub indicator: Vec<EncryptedColumn>,
    /// Measure columns: `measure[j]` holds the ASHE-encrypted measure where
    /// the row's value is `domain[j]` and ASHE(0) elsewhere.
    pub measure: Vec<EncryptedColumn>,
}

impl BasicSplayedColumns {
    /// Index of a domain value's column, if it exists.
    pub fn column_of(&self, value: &str) -> Option<usize> {
        self.domain.iter().position(|v| v == value)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.indicator.first().map_or(0, |c| c.len())
    }

    /// Storage expansion factor relative to the plaintext pair of columns:
    /// `2` plaintext columns become `2 d` encrypted columns.
    pub fn expansion_factor(&self) -> f64 {
        self.domain.len() as f64
    }
}

/// Encoder for basic SPLASHE over one dimension and one co-queried measure.
pub struct BasicSplashe {
    domain: Vec<String>,
    /// One ASHE scheme per splayed column (Seabed derives a fresh key per
    /// column, §4.2); index `j` is the indicator scheme, `d + j` the measure
    /// scheme for `domain[j]`.
    schemes: Vec<AsheScheme>,
}

impl BasicSplashe {
    /// Creates an encoder for the given domain. `column_keys` must provide
    /// `2 * domain.len()` independent 16-byte keys.
    pub fn new(domain: Vec<String>, column_keys: Vec<[u8; 16]>) -> BasicSplashe {
        assert_eq!(
            column_keys.len(),
            2 * domain.len(),
            "basic SPLASHE needs one key per indicator column and one per measure column"
        );
        BasicSplashe {
            domain,
            schemes: column_keys.iter().map(AsheScheme::new).collect(),
        }
    }

    /// The dimension's domain.
    pub fn domain(&self) -> &[String] {
        &self.domain
    }

    /// Scheme encrypting indicator column `j`.
    pub fn indicator_scheme(&self, j: usize) -> &AsheScheme {
        &self.schemes[j]
    }

    /// Scheme encrypting measure column `j`.
    pub fn measure_scheme(&self, j: usize) -> &AsheScheme {
        &self.schemes[self.domain.len() + j]
    }

    /// Splays and encrypts rows of `(dimension value, measure value)` pairs,
    /// assigning consecutive row identifiers starting at `start_id`.
    ///
    /// Panics if a row's dimension value is not in the domain (the planner
    /// must have enumerated the full domain).
    pub fn encode_rows(&self, rows: &[(String, u64)], start_id: u64) -> BasicSplayedColumns {
        let d = self.domain.len();
        let mut indicator_plain = vec![Vec::with_capacity(rows.len()); d];
        let mut measure_plain = vec![Vec::with_capacity(rows.len()); d];
        for (value, measure) in rows {
            let j = self
                .domain
                .iter()
                .position(|v| v == value)
                .unwrap_or_else(|| panic!("value {value:?} not in splayed domain"));
            for col in 0..d {
                indicator_plain[col].push(u64::from(col == j));
                measure_plain[col].push(if col == j { *measure } else { 0 });
            }
        }
        let indicator = indicator_plain
            .iter()
            .enumerate()
            .map(|(j, col)| seabed_ashe::encrypt_column(self.indicator_scheme(j), col, start_id))
            .collect();
        let measure = measure_plain
            .iter()
            .enumerate()
            .map(|(j, col)| seabed_ashe::encrypt_column(self.measure_scheme(j), col, start_id))
            .collect();
        BasicSplayedColumns {
            domain: self.domain.clone(),
            indicator,
            measure,
        }
    }

    /// Answers `SELECT COUNT(*) WHERE dim = value` over the splayed columns.
    pub fn count_where(&self, cols: &BasicSplayedColumns, value: &str) -> Option<u64> {
        let j = cols.column_of(value)?;
        let agg = seabed_ashe::aggregate_where(self.indicator_scheme(j), &cols.indicator[j], |_| true);
        Some(self.indicator_scheme(j).decrypt(&agg))
    }

    /// Answers `SELECT SUM(measure) WHERE dim = value` over the splayed columns.
    pub fn sum_where(&self, cols: &BasicSplayedColumns, value: &str) -> Option<u64> {
        let j = cols.column_of(value)?;
        let agg = seabed_ashe::aggregate_where(self.measure_scheme(j), &cols.measure[j], |_| true);
        Some(self.measure_scheme(j).decrypt(&agg))
    }
}

/// Storage overhead of basic SPLASHE for a dimension of cardinality `d` that
/// is co-queried with `measures` measure columns: the dimension plus each such
/// measure expands by a factor of `d` (Figure 10b's "SPLASHE" line).
pub fn basic_storage_factor(cardinality: usize, measures: usize) -> f64 {
    let plain_columns = 1 + measures;
    let splayed_columns = cardinality * (1 + measures);
    splayed_columns as f64 / plain_columns as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<[u8; 16]> {
        (0..n).map(|i| [i as u8 + 1; 16]).collect()
    }

    fn gender_salary_rows() -> Vec<(String, u64)> {
        // The Figure 3 example.
        vec![
            ("Male".to_string(), 1000),
            ("Female".to_string(), 2000),
            ("Female".to_string(), 200),
        ]
    }

    fn encoder() -> BasicSplashe {
        BasicSplashe::new(vec!["Male".to_string(), "Female".to_string()], keys(4))
    }

    #[test]
    fn figure3_example_counts_and_sums() {
        let enc = encoder();
        let cols = enc.encode_rows(&gender_salary_rows(), 0);
        assert_eq!(enc.count_where(&cols, "Male"), Some(1));
        assert_eq!(enc.count_where(&cols, "Female"), Some(2));
        assert_eq!(enc.sum_where(&cols, "Male"), Some(1000));
        assert_eq!(enc.sum_where(&cols, "Female"), Some(2200));
        assert_eq!(enc.count_where(&cols, "Other"), None);
    }

    #[test]
    fn splayed_columns_have_one_column_per_domain_value() {
        let enc = encoder();
        let cols = enc.encode_rows(&gender_salary_rows(), 0);
        assert_eq!(cols.indicator.len(), 2);
        assert_eq!(cols.measure.len(), 2);
        assert_eq!(cols.rows(), 3);
        assert_eq!(cols.expansion_factor(), 2.0);
    }

    #[test]
    fn ciphertexts_do_not_reveal_which_column_is_hot() {
        // Every cell of every splayed column is an ASHE ciphertext; the two
        // indicator columns are indistinguishable without the key, so at least
        // their raw stored values should not be trivially equal across rows.
        let enc = encoder();
        let cols = enc.encode_rows(&gender_salary_rows(), 0);
        let male = &cols.indicator[0].values;
        // values encrypting 1, 0, 0 — all three stored words must differ
        // (randomisation by row id), unlike deterministic encryption.
        assert_ne!(male[1], male[2], "two encryptions of 0 must differ");
    }

    #[test]
    fn larger_domain_roundtrip() {
        let domain: Vec<String> = (0..8).map(|i| format!("value-{i}")).collect();
        let enc = BasicSplashe::new(domain.clone(), keys(16));
        let rows: Vec<(String, u64)> = (0..200).map(|i| (format!("value-{}", i % 8), (i * 3) as u64)).collect();
        let cols = enc.encode_rows(&rows, 1000);
        for (j, value) in domain.iter().enumerate() {
            let expected_count = rows.iter().filter(|(v, _)| v == value).count() as u64;
            let expected_sum: u64 = rows.iter().filter(|(v, _)| v == value).map(|(_, m)| m).sum();
            assert_eq!(enc.count_where(&cols, value), Some(expected_count), "count col {j}");
            assert_eq!(enc.sum_where(&cols, value), Some(expected_sum), "sum col {j}");
        }
    }

    #[test]
    #[should_panic]
    fn unknown_value_panics_on_encode() {
        let enc = encoder();
        enc.encode_rows(&[("Unknown".to_string(), 1)], 0);
    }

    #[test]
    fn storage_factor_matches_formula() {
        assert_eq!(basic_storage_factor(2, 1), 2.0);
        assert_eq!(basic_storage_factor(196, 1), 196.0);
        // Splaying only the dimension against 3 measures still costs d×.
        assert_eq!(basic_storage_factor(10, 3), 10.0);
    }
}
