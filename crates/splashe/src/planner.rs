//! SPLASHE storage planning (§4.2, Figure 10b).
//!
//! Splaying is not free: each protected dimension multiplies the storage of
//! every measure it is co-queried with. Seabed's planner therefore lets the
//! user cap the total storage overhead and prioritises dimensions by
//! cardinality (lowest first), encrypting as many as the budget allows with
//! SPLASHE and warning that the rest fall back to DET.

use crate::enhanced::{plan_enhanced, EnhancedPlan};

/// A sensitive dimension the user wants protected, together with the
/// information the planner needs.
#[derive(Clone, Debug)]
pub struct DimensionProfile {
    /// Column name.
    pub name: String,
    /// Expected value distribution (value, occurrence count or weight).
    pub distribution: Vec<(String, u64)>,
    /// Number of measure columns that queries combine with this dimension
    /// (only these need to be splayed alongside it).
    pub co_queried_measures: usize,
}

impl DimensionProfile {
    /// Dimension cardinality.
    pub fn cardinality(&self) -> usize {
        self.distribution.len()
    }
}

/// How the planner decided to protect one dimension.
#[derive(Clone, Debug, PartialEq)]
pub enum DimensionDecision {
    /// Splay every value (basic SPLASHE).
    BasicSplashe {
        /// Storage multiplier this choice costs.
        factor: f64,
    },
    /// Splay only the frequent values (enhanced SPLASHE).
    EnhancedSplashe {
        /// The chosen split of frequent vs infrequent values.
        plan: EnhancedPlan,
        /// Storage multiplier this choice costs.
        factor: f64,
    },
    /// Budget exhausted: fall back to deterministic encryption and accept the
    /// frequency leakage (the planner "warns the user", §4.2).
    DeterministicFallback,
}

/// Cumulative overhead report for one dimension, in the order Figure 10b plots
/// them (sorted by cardinality).
#[derive(Clone, Debug)]
pub struct OverheadPoint {
    /// Dimension name.
    pub name: String,
    /// Dimension cardinality.
    pub cardinality: usize,
    /// Cumulative storage factor if this and all previous dimensions use
    /// basic SPLASHE.
    pub cumulative_basic: f64,
    /// Cumulative storage factor if this and all previous dimensions use
    /// enhanced SPLASHE.
    pub cumulative_enhanced: f64,
}

/// Per-dimension storage factors and the cumulative curves of Figure 10b.
///
/// Overheads are modeled the way the paper reports them: each dimension's
/// splaying multiplies the storage of its own column plus its co-queried
/// measures; dimensions are independent, so cumulative overhead is the sum of
/// the per-dimension extra columns normalised by the plaintext column count.
pub fn overhead_curve(dimensions: &[DimensionProfile], total_plain_columns: usize) -> Vec<OverheadPoint> {
    let mut dims: Vec<&DimensionProfile> = dimensions.iter().collect();
    dims.sort_by_key(|d| d.cardinality());
    let mut extra_basic = 0.0f64;
    let mut extra_enhanced = 0.0f64;
    let mut points = Vec::with_capacity(dims.len());
    for dim in dims {
        let d = dim.cardinality() as f64;
        let m = dim.co_queried_measures as f64;
        // Basic: dimension column becomes d indicator columns, each co-queried
        // measure becomes d columns.
        let basic_columns = d + m * d;
        let plain_columns = 1.0 + m;
        extra_basic += basic_columns - plain_columns;
        // Enhanced: dimension keeps 1 DET column, each measure becomes k+1.
        let plan = plan_enhanced(&dim.distribution);
        let enhanced_columns = 1.0 + m * (plan.k() as f64 + 1.0);
        extra_enhanced += enhanced_columns - plain_columns;
        points.push(OverheadPoint {
            name: dim.name.clone(),
            cardinality: dim.cardinality(),
            cumulative_basic: 1.0 + extra_basic / total_plain_columns as f64,
            cumulative_enhanced: 1.0 + extra_enhanced / total_plain_columns as f64,
        });
    }
    points
}

/// Decides, per dimension, whether to use basic SPLASHE, enhanced SPLASHE or
/// the DET fallback, under a maximum cumulative storage factor.
///
/// Dimensions are prioritised lowest-cardinality first, "in order to maximise
/// protection against frequency attacks" (§4.2): low-cardinality columns are
/// exactly the ones frequency attacks decode most easily.
pub fn plan_under_budget(
    dimensions: &[DimensionProfile],
    total_plain_columns: usize,
    max_storage_factor: f64,
    prefer_enhanced: bool,
) -> Vec<(String, DimensionDecision)> {
    let mut dims: Vec<&DimensionProfile> = dimensions.iter().collect();
    dims.sort_by_key(|d| d.cardinality());
    let mut decisions = Vec::with_capacity(dims.len());
    let mut extra_columns = 0.0f64;
    for dim in dims {
        let d = dim.cardinality() as f64;
        let m = dim.co_queried_measures as f64;
        let plain_columns = 1.0 + m;
        let (candidate_extra, decision) = if prefer_enhanced {
            let plan = plan_enhanced(&dim.distribution);
            let cols = 1.0 + m * (plan.k() as f64 + 1.0);
            let factor = cols / plain_columns;
            (
                cols - plain_columns,
                DimensionDecision::EnhancedSplashe { plan, factor },
            )
        } else {
            let cols = d + m * d;
            let factor = cols / plain_columns;
            (cols - plain_columns, DimensionDecision::BasicSplashe { factor })
        };
        let projected = 1.0 + (extra_columns + candidate_extra) / total_plain_columns as f64;
        if projected <= max_storage_factor {
            extra_columns += candidate_extra;
            decisions.push((dim.name.clone(), decision));
        } else {
            decisions.push((dim.name.clone(), DimensionDecision::DeterministicFallback));
        }
    }
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_distribution(cardinality: usize, total: u64) -> Vec<(String, u64)> {
        // A simple Zipf-ish skew: value i gets weight ~ total / (i+1).
        let h: f64 = (1..=cardinality).map(|i| 1.0 / i as f64).sum();
        (0..cardinality)
            .map(|i| (format!("v{i}"), ((total as f64 / h) / (i + 1) as f64).max(1.0) as u64))
            .collect()
    }

    fn sample_dimensions() -> Vec<DimensionProfile> {
        (0..10)
            .map(|i| {
                let cardinality = 2 + i * 5;
                DimensionProfile {
                    name: format!("Col{}", i + 1),
                    distribution: zipf_distribution(cardinality, 100_000),
                    co_queried_measures: 2,
                }
            })
            .collect()
    }

    #[test]
    fn curve_is_sorted_by_cardinality_and_monotone() {
        let dims = sample_dimensions();
        let curve = overhead_curve(&dims, 51); // 33 dims + 18 measures
        assert_eq!(curve.len(), dims.len());
        for w in curve.windows(2) {
            assert!(w[0].cardinality <= w[1].cardinality);
            assert!(w[0].cumulative_basic <= w[1].cumulative_basic);
            assert!(w[0].cumulative_enhanced <= w[1].cumulative_enhanced);
        }
    }

    #[test]
    fn enhanced_dominates_basic_everywhere() {
        let curve = overhead_curve(&sample_dimensions(), 51);
        for p in &curve {
            assert!(
                p.cumulative_enhanced <= p.cumulative_basic + 1e-9,
                "{}: enhanced {} > basic {}",
                p.name,
                p.cumulative_enhanced,
                p.cumulative_basic
            );
        }
    }

    #[test]
    fn figure10b_shape_more_dimensions_under_same_budget() {
        // The paper's observation: with a 2x budget, enhanced SPLASHE covers
        // (at least as many, typically more) dimensions than basic; with 3x it
        // covers roughly twice as many.
        let dims = sample_dimensions();
        let count_covered = |prefer_enhanced: bool, budget: f64| {
            plan_under_budget(&dims, 51, budget, prefer_enhanced)
                .iter()
                .filter(|(_, d)| !matches!(d, DimensionDecision::DeterministicFallback))
                .count()
        };
        for budget in [2.0, 3.0, 5.0] {
            assert!(
                count_covered(true, budget) >= count_covered(false, budget),
                "enhanced should cover at least as many dimensions at {budget}x"
            );
        }
        assert!(count_covered(true, 3.0) > count_covered(false, 3.0));
    }

    #[test]
    fn budget_fallback_is_deterministic_encryption() {
        let dims = sample_dimensions();
        let decisions = plan_under_budget(&dims, 51, 1.05, true);
        // A 5% budget cannot fit much splaying; the large dimensions must fall back.
        assert!(decisions
            .iter()
            .any(|(_, d)| matches!(d, DimensionDecision::DeterministicFallback)));
        // Decisions come back lowest-cardinality first.
        assert_eq!(decisions.len(), dims.len());
    }

    #[test]
    fn generous_budget_covers_everything() {
        let dims = sample_dimensions();
        let decisions = plan_under_budget(&dims, 51, 1_000.0, false);
        assert!(decisions
            .iter()
            .all(|(_, d)| matches!(d, DimensionDecision::BasicSplashe { .. })));
    }

    #[test]
    fn low_cardinality_dimensions_win_ties_for_budget() {
        // With a budget that only fits one dimension, the 2-value dimension
        // (most vulnerable to frequency attacks) must be the one protected.
        let dims = sample_dimensions();
        let decisions = plan_under_budget(&dims, 51, 1.3, false);
        let protected: Vec<&String> = decisions
            .iter()
            .filter(|(_, d)| !matches!(d, DimensionDecision::DeterministicFallback))
            .map(|(n, _)| n)
            .collect();
        assert!(!protected.is_empty());
        assert_eq!(protected[0], "Col1");
    }
}
