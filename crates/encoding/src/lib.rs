//! # seabed-encoding
//!
//! Integer-list encodings and compression for Seabed's ASHE ID lists.
//!
//! ASHE ciphertexts carry the multiset of row identifiers that were aggregated
//! into them; keeping those lists small is what makes ASHE practical at
//! billion-row scale (§4.5 of the paper, Table 3, Figure 8). This crate
//! provides:
//!
//! * [`varint`] — variable-byte integer encoding;
//! * [`idlist`] — range / differential / variable-byte combinations over runs
//!   of identifiers, exactly the encodings Table 3 enumerates;
//! * [`bitmap`] — a roaring-style chunked bitmap (the alternative the paper
//!   evaluated and rejected);
//! * [`deflate`] — an LZ77 + canonical-Huffman compressor with the fast and
//!   compact profiles compared in Figure 8;
//! * [`bitio`] / [`huffman`] / [`lz77`] — the building blocks of the
//!   compressor, usable on their own.

#![warn(missing_docs)]

pub mod bitio;
pub mod bitmap;
pub mod deflate;
pub mod huffman;
pub mod idlist;
pub mod lz77;
pub mod varint;

pub use bitmap::Bitmap;
pub use deflate::{compress, decompress, Level};
pub use idlist::{decode_runs, encode_runs, encoded_size, ids_to_runs, runs_to_ids, IdListEncoding, Run};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn sorted_ids() -> impl Strategy<Value = Vec<u64>> {
        proptest::collection::vec(0u64..5_000, 0..400).prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        })
    }

    proptest! {
        #[test]
        fn varint_roundtrip(values in proptest::collection::vec(any::<u64>(), 0..200)) {
            let encoded = varint::encode_all(&values);
            prop_assert_eq!(varint::decode_all(&encoded).unwrap(), values);
        }

        #[test]
        fn runs_roundtrip_all_encodings(ids in sorted_ids()) {
            let runs = ids_to_runs(&ids);
            prop_assert_eq!(&runs_to_ids(&runs), &ids);
            for enc in IdListEncoding::ALL {
                let data = encode_runs(&runs, enc);
                let decoded = decode_runs(&data, enc).unwrap();
                prop_assert_eq!(&decoded, &runs, "encoding {:?}", enc);
            }
        }

        #[test]
        fn deflate_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            for level in [Level::Fast, Level::Compact] {
                let c = compress(&data, level);
                let d = decompress(&c);
                prop_assert_eq!(d.as_deref(), Some(&data[..]));
            }
        }

        #[test]
        fn deflate_bounded_expansion(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            // The stored-block fallback bounds worst-case expansion to 5 bytes.
            let c = compress(&data, Level::Fast);
            prop_assert!(c.len() <= data.len() + 5);
        }

        #[test]
        fn bitmap_matches_runs(ids in sorted_ids()) {
            let runs = ids_to_runs(&ids);
            let bm = Bitmap::from_runs(&runs);
            prop_assert_eq!(bm.cardinality(), ids.len());
            prop_assert_eq!(bm.to_runs(), runs);
        }

        #[test]
        fn encoded_size_is_positive_and_consistent(ids in sorted_ids()) {
            let runs = ids_to_runs(&ids);
            for enc in IdListEncoding::ALL {
                let size = encoded_size(&runs, enc);
                prop_assert_eq!(size, encode_runs(&runs, enc).len());
            }
        }
    }
}
