//! LZ77 match finding with hash chains.
//!
//! The compressor has two profiles mirroring the "Deflate (fast)" and
//! "Deflate (compact)" configurations compared in Figure 8 of the paper:
//! the fast profile bounds the number of hash-chain probes per position, the
//! compact profile searches much deeper and enables lazy matching.

/// Size of the sliding window (32 KiB, as in DEFLATE).
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Minimum match length worth emitting.
pub const MIN_MATCH: usize = 3;
/// Maximum match length.
pub const MAX_MATCH: usize = 258;

/// One LZ77 token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: copy `length` bytes starting `distance` bytes back.
    Match {
        /// Number of bytes to copy (MIN_MATCH..=MAX_MATCH).
        length: u16,
        /// Distance back into the already-produced output (1..=WINDOW_SIZE).
        distance: u16,
    },
}

/// Compression effort profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Profile {
    /// Maximum hash-chain positions examined per input position.
    pub max_chain: usize,
    /// Stop searching once a match at least this long is found.
    pub good_match: usize,
    /// Whether to defer emitting a match by one byte if the next position has
    /// a longer one (lazy matching).
    pub lazy: bool,
}

impl Profile {
    /// Fast profile: shallow search, no lazy matching ("Deflate (fast)").
    pub const FAST: Profile = Profile {
        max_chain: 8,
        good_match: 32,
        lazy: false,
    };
    /// Compact profile: deep search with lazy matching ("Deflate (compact)").
    pub const COMPACT: Profile = Profile {
        max_chain: 256,
        good_match: MAX_MATCH,
        lazy: true,
    };
}

fn hash3(data: &[u8], pos: usize) -> usize {
    let a = data[pos] as u32;
    let b = data[pos + 1] as u32;
    let c = data[pos + 2] as u32;
    (((a << 16) ^ (b << 8) ^ c).wrapping_mul(2654435761) >> 17) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 15;

struct Matcher<'a> {
    data: &'a [u8],
    head: Vec<i64>,
    prev: Vec<i64>,
}

impl<'a> Matcher<'a> {
    fn new(data: &'a [u8]) -> Self {
        Matcher {
            data,
            head: vec![-1; HASH_SIZE],
            prev: vec![-1; data.len()],
        }
    }

    fn insert(&mut self, pos: usize) {
        if pos + MIN_MATCH > self.data.len() {
            return;
        }
        let h = hash3(self.data, pos);
        self.prev[pos] = self.head[h];
        self.head[h] = pos as i64;
    }

    /// Finds the longest match for the data at `pos`, returning (length, distance).
    fn find_match(&self, pos: usize, profile: &Profile) -> Option<(usize, usize)> {
        if pos + MIN_MATCH > self.data.len() {
            return None;
        }
        let h = hash3(self.data, pos);
        let mut candidate = self.head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let max_len = MAX_MATCH.min(self.data.len() - pos);
        let mut chain = 0;
        while candidate >= 0 && chain < profile.max_chain {
            let cand = candidate as usize;
            if pos - cand > WINDOW_SIZE {
                break;
            }
            if cand < pos {
                let mut len = 0usize;
                while len < max_len && self.data[cand + len] == self.data[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cand;
                    if len >= profile.good_match {
                        break;
                    }
                }
            }
            candidate = self.prev[cand];
            chain += 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// Tokenizes `data` into LZ77 literals and matches.
pub fn tokenize(data: &[u8], profile: &Profile) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 2 + 16);
    let mut matcher = Matcher::new(data);
    let mut pos = 0usize;
    while pos < data.len() {
        let current = matcher.find_match(pos, profile);
        let mut emit = current;
        if profile.lazy {
            if let Some((len, _)) = current {
                // Peek at the next position: if it has a strictly longer
                // match, emit this byte as a literal instead.
                matcher.insert(pos);
                if pos + 1 < data.len() {
                    if let Some((next_len, _)) = matcher.find_match(pos + 1, profile) {
                        if next_len > len {
                            emit = None;
                        }
                    }
                }
                match emit {
                    None => {
                        tokens.push(Token::Literal(data[pos]));
                        pos += 1;
                        continue;
                    }
                    Some((len, dist)) => {
                        for p in pos + 1..(pos + len).min(data.len()) {
                            matcher.insert(p);
                        }
                        tokens.push(Token::Match {
                            length: len as u16,
                            distance: dist as u16,
                        });
                        pos += len;
                        continue;
                    }
                }
            }
        }
        match emit {
            Some((len, dist)) => {
                for p in pos..(pos + len).min(data.len()) {
                    matcher.insert(p);
                }
                tokens.push(Token::Match {
                    length: len as u16,
                    distance: dist as u16,
                });
                pos += len;
            }
            None => {
                matcher.insert(pos);
                tokens.push(Token::Literal(data[pos]));
                pos += 1;
            }
        }
    }
    tokens
}

/// Reconstructs the original bytes from a token stream.
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    let mut out: Vec<u8> = Vec::new();
    for token in tokens {
        match *token {
            Token::Literal(b) => out.push(b),
            Token::Match { length, distance } => {
                let start = out.len() - distance as usize;
                for i in 0..length as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], profile: &Profile) {
        let tokens = tokenize(data, profile);
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for profile in [Profile::FAST, Profile::COMPACT] {
            roundtrip(b"", &profile);
            roundtrip(b"a", &profile);
            roundtrip(b"ab", &profile);
            roundtrip(b"abc", &profile);
        }
    }

    #[test]
    fn repetitive_data_produces_matches() {
        let data: Vec<u8> = b"seabed".iter().cycle().take(3000).cloned().collect();
        let tokens = tokenize(&data, &Profile::COMPACT);
        assert!(
            tokens.len() < 100,
            "expected heavy matching, got {} tokens",
            tokens.len()
        );
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn overlapping_match_copy() {
        // "aaaaa..." forces distance-1 matches with overlapping copies.
        let data = vec![b'a'; 1000];
        for profile in [Profile::FAST, Profile::COMPACT] {
            roundtrip(&data, &profile);
        }
    }

    #[test]
    fn random_like_data_roundtrips() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        for profile in [Profile::FAST, Profile::COMPACT] {
            roundtrip(&data, &profile);
        }
    }

    #[test]
    fn compact_never_worse_than_fast_on_structured_data() {
        let mut data = Vec::new();
        for i in 0..2000u32 {
            data.extend_from_slice(format!("row-{},value-{};", i % 50, i % 7).as_bytes());
        }
        let fast = tokenize(&data, &Profile::FAST);
        let compact = tokenize(&data, &Profile::COMPACT);
        assert!(compact.len() <= fast.len());
        assert_eq!(detokenize(&fast), data);
        assert_eq!(detokenize(&compact), data);
    }

    #[test]
    fn max_match_length_respected() {
        let data = vec![b'x'; 10_000];
        let tokens = tokenize(&data, &Profile::COMPACT);
        for t in &tokens {
            if let Token::Match { length, .. } = t {
                assert!(*length as usize <= MAX_MATCH);
            }
        }
        assert_eq!(detokenize(&tokens), data);
    }
}
