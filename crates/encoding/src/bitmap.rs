//! Chunked (roaring-style) bitmap encoding of ID sets.
//!
//! Section 4.5 notes that Seabed "evaluated several integer list encoding
//! techniques, including bitmaps" and found that the bitmap algorithms
//! performed poorly for this workload; they are omitted from Figure 8 "for
//! brevity". This module implements the bitmap alternative so the ablation can
//! be reproduced: the ID space is split into 2^16-sized chunks and each chunk
//! stores either a sorted array of 16-bit offsets (sparse) or a packed bit set
//! (dense), following the Roaring design.

use crate::idlist::Run;

const CHUNK_BITS: u64 = 16;
const CHUNK_SIZE: u64 = 1 << CHUNK_BITS;
/// Above this many values a chunk switches from an array to a packed bit set
/// (the crossover where 16-bit entries exceed the 8 KiB bit set).
const ARRAY_LIMIT: usize = 4096;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Container {
    /// Sorted 16-bit offsets within the chunk.
    Array(Vec<u16>),
    /// Packed bit set of 65536 bits.
    Bits(Box<[u64; 1024]>),
}

impl Container {
    fn cardinality(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bits(b) => b.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    fn push(&mut self, offset: u16) {
        match self {
            Container::Array(v) => {
                if v.last() == Some(&offset) {
                    return;
                }
                v.push(offset);
                if v.len() > ARRAY_LIMIT {
                    let mut bits = Box::new([0u64; 1024]);
                    for &o in v.iter() {
                        bits[(o >> 6) as usize] |= 1u64 << (o & 63);
                    }
                    *self = Container::Bits(bits);
                }
            }
            Container::Bits(b) => {
                b[(offset >> 6) as usize] |= 1u64 << (offset & 63);
            }
        }
    }

    fn iter_offsets(&self) -> Vec<u16> {
        match self {
            Container::Array(v) => v.clone(),
            Container::Bits(b) => {
                let mut out = Vec::with_capacity(self.cardinality());
                for (word_idx, &word) in b.iter().enumerate() {
                    let mut w = word;
                    while w != 0 {
                        let bit = w.trailing_zeros();
                        out.push((word_idx as u32 * 64 + bit) as u16);
                        w &= w - 1;
                    }
                }
                out
            }
        }
    }
}

/// A compressed bitmap over 64-bit identifiers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bitmap {
    /// Chunks keyed by `id >> 16`, kept sorted by key.
    chunks: Vec<(u64, Container)>,
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// Builds a bitmap from sorted runs of identifiers.
    pub fn from_runs(runs: &[Run]) -> Bitmap {
        let mut bm = Bitmap::new();
        for run in runs {
            for id in run.start..=run.end {
                bm.insert(id);
            }
        }
        bm
    }

    /// Inserts one identifier. IDs must be inserted in non-decreasing order
    /// (which is how Seabed workers scan their partitions).
    pub fn insert(&mut self, id: u64) {
        let key = id >> CHUNK_BITS;
        let offset = (id & (CHUNK_SIZE - 1)) as u16;
        match self.chunks.last_mut() {
            Some((k, c)) if *k == key => c.push(offset),
            _ => {
                let mut c = Container::Array(Vec::new());
                c.push(offset);
                self.chunks.push((key, c));
            }
        }
    }

    /// Total number of identifiers stored.
    pub fn cardinality(&self) -> usize {
        self.chunks.iter().map(|(_, c)| c.cardinality()).sum()
    }

    /// Expands back into maximal runs.
    pub fn to_runs(&self) -> Vec<Run> {
        let mut runs: Vec<Run> = Vec::new();
        for (key, container) in &self.chunks {
            for offset in container.iter_offsets() {
                let id = (key << CHUNK_BITS) | offset as u64;
                match runs.last_mut() {
                    Some(run) if id == run.end + 1 => run.end = id,
                    Some(run) if id <= run.end => {}
                    _ => runs.push(Run::new(id, id)),
                }
            }
        }
        runs
    }

    /// Serializes the bitmap.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        crate::varint::encode_u64(self.chunks.len() as u64, &mut out);
        for (key, container) in &self.chunks {
            crate::varint::encode_u64(*key, &mut out);
            match container {
                Container::Array(v) => {
                    out.push(0u8);
                    crate::varint::encode_u64(v.len() as u64, &mut out);
                    for &offset in v {
                        out.extend_from_slice(&offset.to_le_bytes());
                    }
                }
                Container::Bits(b) => {
                    out.push(1u8);
                    for word in b.iter() {
                        out.extend_from_slice(&word.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Deserializes a bitmap; returns `None` on malformed input.
    pub fn deserialize(data: &[u8]) -> Option<Bitmap> {
        let (n_chunks, mut pos) = crate::varint::decode_u64(data, 0)?;
        let mut chunks = Vec::new();
        for _ in 0..n_chunks {
            let (key, next) = crate::varint::decode_u64(data, pos)?;
            pos = next;
            let kind = *data.get(pos)?;
            pos += 1;
            match kind {
                0 => {
                    let (len, next) = crate::varint::decode_u64(data, pos)?;
                    pos = next;
                    let mut v = Vec::with_capacity((len as usize).min(1 << 16));
                    for _ in 0..len {
                        let bytes = data.get(pos..pos + 2)?;
                        v.push(u16::from_le_bytes(bytes.try_into().unwrap()));
                        pos += 2;
                    }
                    chunks.push((key, Container::Array(v)));
                }
                1 => {
                    let mut bits = Box::new([0u64; 1024]);
                    for word in bits.iter_mut() {
                        let bytes = data.get(pos..pos + 8)?;
                        *word = u64::from_le_bytes(bytes.try_into().unwrap());
                        pos += 8;
                    }
                    chunks.push((key, Container::Bits(bits)));
                }
                _ => return None,
            }
        }
        Some(Bitmap { chunks })
    }

    /// Serialized size in bytes.
    pub fn serialized_size(&self) -> usize {
        self.serialize().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_cardinality() {
        let mut bm = Bitmap::new();
        for id in [1u64, 2, 3, 100, 70_000, 70_001] {
            bm.insert(id);
        }
        assert_eq!(bm.cardinality(), 6);
        assert_eq!(
            bm.to_runs(),
            vec![Run::new(1, 3), Run::new(100, 100), Run::new(70_000, 70_001)]
        );
    }

    #[test]
    fn duplicates_ignored() {
        let mut bm = Bitmap::new();
        bm.insert(5);
        bm.insert(5);
        assert_eq!(bm.cardinality(), 1);
    }

    #[test]
    fn dense_chunk_switches_to_bitset() {
        let runs = vec![Run::new(0, 9999)];
        let bm = Bitmap::from_runs(&runs);
        assert_eq!(bm.cardinality(), 10_000);
        assert_eq!(bm.to_runs(), runs);
        // A dense chunk should serialize to about 8 KiB, not 20 KB of u16s.
        assert!(bm.serialized_size() < 9_000);
    }

    #[test]
    fn serialize_roundtrip_sparse_and_dense() {
        let runs = vec![
            Run::new(10, 20),
            Run::new(100_000, 108_000),
            Run::new(1 << 40, (1 << 40) + 3),
        ];
        let bm = Bitmap::from_runs(&runs);
        let data = bm.serialize();
        let back = Bitmap::deserialize(&data).unwrap();
        assert_eq!(back.to_runs(), runs);
    }

    #[test]
    fn empty_bitmap_roundtrips() {
        let bm = Bitmap::new();
        assert_eq!(Bitmap::deserialize(&bm.serialize()).unwrap(), bm);
        assert_eq!(bm.cardinality(), 0);
        assert!(bm.to_runs().is_empty());
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(Bitmap::deserialize(&[5]).is_none()); // promises 5 chunks, has none
        assert!(Bitmap::deserialize(&[1, 0, 7]).is_none()); // bad container kind
    }

    #[test]
    fn bitmap_is_larger_than_range_encoding_for_contiguous_ids() {
        // The reason the paper rejects bitmaps: a fully contiguous selection is
        // 2 integers under range encoding but ~1 bit per row under bitmaps.
        let runs = vec![Run::new(0, 1_000_000)];
        let bm_size = Bitmap::from_runs(&runs).serialized_size();
        let range_size = crate::idlist::encoded_size(&runs, crate::idlist::IdListEncoding::RangesVbDiff);
        assert!(bm_size > 50 * range_size, "bitmap {bm_size} vs ranges {range_size}");
    }
}
