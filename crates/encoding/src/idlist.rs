//! ID-list encodings (Table 3 of the paper).
//!
//! Every ASHE aggregate carries the multiset of row identifiers that were
//! folded into it. Seabed keeps these lists compact by combining
//!
//! 1. **range encoding** — contiguous identifiers `[a … b]` become the pair
//!    `(a, b)`, which is extremely effective because Seabed uploads rows with
//!    consecutive IDs;
//! 2. **differential encoding** — values are replaced by deltas to their
//!    predecessor;
//! 3. **variable-byte encoding** — small numbers use few bytes;
//! 4. an optional DEFLATE pass (fast or compact profile).
//!
//! The paper also evaluates bitmap encodings and finds them unattractive for
//! this workload; [`IdListEncoding::Bitmap`] is kept so the Figure 8 ablation
//! can reproduce that comparison.

use crate::bitmap::Bitmap;
use crate::deflate::{self, Level};
use crate::varint;

/// An inclusive run of row identifiers `[start, end]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct Run {
    /// First identifier in the run.
    pub start: u64,
    /// Last identifier in the run (inclusive, `>= start`).
    pub end: u64,
}

impl Run {
    /// Creates a run; panics if `end < start`.
    pub fn new(start: u64, end: u64) -> Run {
        assert!(end >= start, "invalid run [{start}, {end}]");
        Run { start, end }
    }

    /// Number of identifiers in the run.
    pub fn len(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Always false: a run contains at least one identifier.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Converts a sorted, deduplicated list of IDs into maximal runs.
pub fn ids_to_runs(ids: &[u64]) -> Vec<Run> {
    let mut runs: Vec<Run> = Vec::new();
    for &id in ids {
        match runs.last_mut() {
            Some(run) if id == run.end + 1 => run.end = id,
            Some(run) if id <= run.end => {} // duplicate, ignore
            _ => runs.push(Run::new(id, id)),
        }
    }
    runs
}

/// Expands runs back into the individual identifiers.
pub fn runs_to_ids(runs: &[Run]) -> Vec<u64> {
    let mut ids = Vec::with_capacity(runs.iter().map(|r| r.len() as usize).sum());
    for run in runs {
        ids.extend(run.start..=run.end);
    }
    ids
}

/// The encodings compared in Figure 8 (plus the group-by variant of §4.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum IdListEncoding {
    /// Range bounds, variable-byte encoded ("Ranges & VB").
    RangesVb,
    /// Range bounds with differential encoding, variable-byte encoded ("+Diff").
    RangesVbDiff,
    /// `RangesVbDiff` followed by the compact DEFLATE profile ("+Deflate(Compact)").
    RangesVbDiffDeflateCompact,
    /// `RangesVbDiff` followed by the fast DEFLATE profile ("+Deflate(Fast)").
    ///
    /// This is the combination Seabed selects for aggregation queries.
    RangesVbDiffDeflateFast,
    /// Plain per-ID differential + variable-byte encoding, no ranges — the
    /// configuration Seabed uses for group-by queries, whose per-group lists
    /// are sparse (§4.5).
    VbDiff,
    /// Chunked bitmap encoding; evaluated and rejected by the paper.
    Bitmap,
}

impl IdListEncoding {
    /// All encodings, in the order Figure 8 plots them.
    pub const ALL: [IdListEncoding; 6] = [
        IdListEncoding::RangesVb,
        IdListEncoding::RangesVbDiff,
        IdListEncoding::RangesVbDiffDeflateCompact,
        IdListEncoding::RangesVbDiffDeflateFast,
        IdListEncoding::VbDiff,
        IdListEncoding::Bitmap,
    ];

    /// Human-readable label matching the figure legend.
    pub fn label(&self) -> &'static str {
        match self {
            IdListEncoding::RangesVb => "Ranges & VB",
            IdListEncoding::RangesVbDiff => "+Diff",
            IdListEncoding::RangesVbDiffDeflateCompact => "+Deflate(Compact)",
            IdListEncoding::RangesVbDiffDeflateFast => "+Deflate(Fast)",
            IdListEncoding::VbDiff => "VB & Diff (group-by)",
            IdListEncoding::Bitmap => "Bitmap",
        }
    }

    /// The encoding Seabed uses for plain aggregation queries.
    pub fn seabed_default() -> IdListEncoding {
        IdListEncoding::RangesVbDiffDeflateFast
    }

    /// The encoding Seabed uses for group-by queries.
    pub fn seabed_group_by() -> IdListEncoding {
        IdListEncoding::VbDiff
    }
}

fn encode_ranges_vb(runs: &[Run]) -> Vec<u8> {
    // Raw bounds: start_1, end_1, start_2, end_2, ...
    let mut values = Vec::with_capacity(runs.len() * 2);
    for run in runs {
        values.push(run.start);
        values.push(run.end);
    }
    varint::encode_all(&values)
}

fn decode_ranges_vb(data: &[u8]) -> Option<Vec<Run>> {
    let values = varint::decode_all(data)?;
    if values.len() % 2 != 0 {
        return None;
    }
    let mut runs = Vec::with_capacity(values.len() / 2);
    for pair in values.chunks(2) {
        if pair[1] < pair[0] {
            return None;
        }
        runs.push(Run::new(pair[0], pair[1]));
    }
    Some(runs)
}

fn encode_ranges_vb_diff(runs: &[Run]) -> Vec<u8> {
    // Differential bounds: start_1, end_1 - start_1, start_2 - end_1, ...
    // This is the "Combination" row of Table 3.
    let mut values = Vec::with_capacity(runs.len() * 2);
    let mut prev = 0u64;
    for run in runs {
        values.push(run.start - prev);
        values.push(run.end - run.start);
        prev = run.end;
    }
    varint::encode_all(&values)
}

fn decode_ranges_vb_diff(data: &[u8]) -> Option<Vec<Run>> {
    let values = varint::decode_all(data)?;
    if values.len() % 2 != 0 {
        return None;
    }
    let mut runs = Vec::with_capacity(values.len() / 2);
    let mut prev = 0u64;
    for pair in values.chunks(2) {
        let start = prev.checked_add(pair[0])?;
        let end = start.checked_add(pair[1])?;
        runs.push(Run::new(start, end));
        prev = end;
    }
    Some(runs)
}

fn encode_vb_diff(runs: &[Run]) -> Vec<u8> {
    // Per-ID deltas (no range structure), as used for group-by results.
    let mut out = Vec::new();
    let mut prev = 0u64;
    for run in runs {
        for id in run.start..=run.end {
            varint::encode_u64(id - prev, &mut out);
            prev = id;
        }
    }
    out
}

fn decode_vb_diff(data: &[u8]) -> Option<Vec<Run>> {
    let deltas = varint::decode_all(data)?;
    let mut ids = Vec::with_capacity(deltas.len());
    let mut prev = 0u64;
    for (i, &d) in deltas.iter().enumerate() {
        let id = if i == 0 { d } else { prev.checked_add(d)? };
        ids.push(id);
        prev = id;
    }
    Some(ids_to_runs(&ids))
}

/// Encodes a run list with the chosen encoding.
pub fn encode_runs(runs: &[Run], encoding: IdListEncoding) -> Vec<u8> {
    match encoding {
        IdListEncoding::RangesVb => encode_ranges_vb(runs),
        IdListEncoding::RangesVbDiff => encode_ranges_vb_diff(runs),
        IdListEncoding::RangesVbDiffDeflateCompact => deflate::compress(&encode_ranges_vb_diff(runs), Level::Compact),
        IdListEncoding::RangesVbDiffDeflateFast => deflate::compress(&encode_ranges_vb_diff(runs), Level::Fast),
        IdListEncoding::VbDiff => encode_vb_diff(runs),
        IdListEncoding::Bitmap => Bitmap::from_runs(runs).serialize(),
    }
}

/// Decodes a run list. Returns `None` on malformed input.
pub fn decode_runs(data: &[u8], encoding: IdListEncoding) -> Option<Vec<Run>> {
    match encoding {
        IdListEncoding::RangesVb => decode_ranges_vb(data),
        IdListEncoding::RangesVbDiff => decode_ranges_vb_diff(data),
        IdListEncoding::RangesVbDiffDeflateCompact | IdListEncoding::RangesVbDiffDeflateFast => {
            decode_ranges_vb_diff(&deflate::decompress(data)?)
        }
        IdListEncoding::VbDiff => decode_vb_diff(data),
        IdListEncoding::Bitmap => Bitmap::deserialize(data).map(|b| b.to_runs()),
    }
}

/// Encoded size in bytes for a run list under a given encoding.
pub fn encoded_size(runs: &[Run], encoding: IdListEncoding) -> usize {
    encode_runs(runs, encoding).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_runs() -> Vec<Run> {
        vec![Run::new(2, 14), Run::new(19, 23), Run::new(40, 40), Run::new(100, 1000)]
    }

    #[test]
    fn table3_example_range_encoding() {
        // [2..14, 19..23] -> [2-14, 19-23]: four VB integers.
        let runs = vec![Run::new(2, 14), Run::new(19, 23)];
        let data = encode_runs(&runs, IdListEncoding::RangesVb);
        assert_eq!(varint::decode_all(&data).unwrap(), vec![2, 14, 19, 23]);
        assert_eq!(decode_runs(&data, IdListEncoding::RangesVb).unwrap(), runs);
    }

    #[test]
    fn table3_example_combination_encoding() {
        // [2..14, 19..23] -> Combination [2-12, 5-4].
        let runs = vec![Run::new(2, 14), Run::new(19, 23)];
        let data = encode_runs(&runs, IdListEncoding::RangesVbDiff);
        assert_eq!(varint::decode_all(&data).unwrap(), vec![2, 12, 5, 4]);
        assert_eq!(decode_runs(&data, IdListEncoding::RangesVbDiff).unwrap(), runs);
    }

    #[test]
    fn table3_example_diff_encoding_of_ids() {
        // [2,3,4,9,23] -> diffs [2,1,1,5,14].
        let ids = vec![2u64, 3, 4, 9, 23];
        let runs = ids_to_runs(&ids);
        let data = encode_runs(&runs, IdListEncoding::VbDiff);
        assert_eq!(varint::decode_all(&data).unwrap(), vec![2, 1, 1, 5, 14]);
        assert_eq!(runs_to_ids(&decode_runs(&data, IdListEncoding::VbDiff).unwrap()), ids);
    }

    #[test]
    fn all_encodings_roundtrip() {
        let runs = sample_runs();
        for enc in IdListEncoding::ALL {
            let data = encode_runs(&runs, enc);
            assert_eq!(decode_runs(&data, enc).unwrap(), runs, "{enc:?}");
        }
    }

    #[test]
    fn empty_list_roundtrips() {
        for enc in IdListEncoding::ALL {
            let data = encode_runs(&[], enc);
            assert_eq!(decode_runs(&data, enc).unwrap(), vec![], "{enc:?}");
        }
    }

    #[test]
    fn ids_to_runs_merges_and_dedups() {
        assert_eq!(
            ids_to_runs(&[1, 2, 3, 3, 5, 6, 10]),
            vec![Run::new(1, 3), Run::new(5, 6), Run::new(10, 10)]
        );
        assert_eq!(ids_to_runs(&[]), vec![]);
    }

    #[test]
    fn contiguous_selection_is_constant_size() {
        // Selectivity 100%: one run regardless of how many rows — range
        // encoding keeps the list tiny (the paper's best case).
        let small = vec![Run::new(0, 999)];
        let large = vec![Run::new(0, 999_999)];
        let enc = IdListEncoding::RangesVbDiff;
        assert!(encoded_size(&large, enc) <= encoded_size(&small, enc) + 2);
    }

    #[test]
    fn sparse_lists_favor_vbdiff_over_ranges() {
        // 50% selectivity worst case: every other ID. Range encoding doubles
        // the entries; per-ID diff encoding stays at one small delta per ID.
        let ids: Vec<u64> = (0..10_000u64).map(|i| i * 2).collect();
        let runs = ids_to_runs(&ids);
        let ranges = encoded_size(&runs, IdListEncoding::RangesVb);
        let vbdiff = encoded_size(&runs, IdListEncoding::VbDiff);
        assert!(vbdiff < ranges);
    }

    #[test]
    fn deflate_helps_on_regular_gaps() {
        // Alternating IDs produce highly regular diff streams that deflate
        // compresses well — the observation at the end of §6.1.
        let ids: Vec<u64> = (0..50_000u64).map(|i| i * 2).collect();
        let runs = ids_to_runs(&ids);
        let plain = encoded_size(&runs, IdListEncoding::RangesVbDiff);
        let deflated = encoded_size(&runs, IdListEncoding::RangesVbDiffDeflateFast);
        assert!(deflated < plain / 2, "deflated {deflated} vs plain {plain}");
    }

    #[test]
    fn malformed_inputs_do_not_panic() {
        for enc in IdListEncoding::ALL {
            // Arbitrary garbage either fails cleanly or decodes to something.
            let _ = decode_runs(&[0xff, 0xff, 0xff], enc);
        }
        assert!(decode_runs(&[0x01], IdListEncoding::RangesVb).is_none());
    }

    #[test]
    fn run_len_and_validation() {
        assert_eq!(Run::new(5, 9).len(), 5);
        assert_eq!(Run::new(7, 7).len(), 1);
        assert!(!Run::new(7, 7).is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_run_panics() {
        let _ = Run::new(10, 9);
    }
}
