//! Bit-level I/O used by the Huffman coder.

/// Writes bits least-significant-bit first into a byte vector.
#[derive(Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    current: u8,
    filled: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `count` bits of `bits` (LSB first).
    pub fn write_bits(&mut self, bits: u32, count: u8) {
        debug_assert!(count <= 32);
        for i in 0..count {
            let bit = ((bits >> i) & 1) as u8;
            self.current |= bit << self.filled;
            self.filled += 1;
            if self.filled == 8 {
                self.buf.push(self.current);
                self.current = 0;
                self.filled = 0;
            }
        }
    }

    /// Writes a Huffman code whose bits are stored most-significant-bit first
    /// (the canonical-code convention).
    pub fn write_code(&mut self, code: u32, len: u8) {
        for i in (0..len).rev() {
            self.write_bits((code >> i) & 1, 1);
        }
    }

    /// Flushes any partial byte and returns the accumulated buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.buf.push(self.current);
        }
        self.buf
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.filled as usize
    }
}

/// Reads bits in the same order [`BitWriter`] produces them.
pub struct BitReader<'a> {
    data: &'a [u8],
    byte_pos: usize,
    bit_pos: u8,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            byte_pos: 0,
            bit_pos: 0,
        }
    }

    /// Reads a single bit; `None` at end of input.
    pub fn read_bit(&mut self) -> Option<u8> {
        let byte = *self.data.get(self.byte_pos)?;
        let bit = (byte >> self.bit_pos) & 1;
        self.bit_pos += 1;
        if self.bit_pos == 8 {
            self.bit_pos = 0;
            self.byte_pos += 1;
        }
        Some(bit)
    }

    /// Reads `count` bits LSB-first.
    pub fn read_bits(&mut self, count: u8) -> Option<u32> {
        let mut out = 0u32;
        for i in 0..count {
            out |= (self.read_bit()? as u32) << i;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xffff, 16);
        w.write_bits(0, 5);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(16), Some(0xffff));
        assert_eq!(r.read_bits(5), Some(0));
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0b1111111, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(1, 1);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn msb_first_codes_roundtrip_via_single_bits() {
        let mut w = BitWriter::new();
        w.write_code(0b110, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(1));
        assert_eq!(r.read_bit(), Some(1));
        assert_eq!(r.read_bit(), Some(0));
    }

    #[test]
    fn reading_past_end_returns_none() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8), Some(0xff));
        assert_eq!(r.read_bit(), None);
    }
}
