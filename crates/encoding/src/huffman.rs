//! Canonical Huffman coding with a bounded maximum code length.
//!
//! The DEFLATE-style compressor Seabed applies to ASHE ID lists (§4.5,
//! Figure 8) entropy-codes LZ77 output symbols with canonical Huffman codes.
//! This module builds length-limited codes from symbol frequencies, serializes
//! the code-length table, and provides encode/decode over the bit stream.

use crate::bitio::{BitReader, BitWriter};

/// Maximum code length; 15 matches DEFLATE and keeps the decode table small.
pub const MAX_CODE_LEN: u8 = 15;

/// A canonical Huffman code book.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodeBook {
    /// Code length per symbol (0 means the symbol does not occur).
    pub lengths: Vec<u8>,
    /// Canonical code per symbol (valid where `lengths[s] > 0`).
    pub codes: Vec<u32>,
}

impl CodeBook {
    /// Builds a code book from symbol frequencies.
    ///
    /// Symbols with zero frequency get length 0. If only one distinct symbol
    /// occurs, it is assigned a 1-bit code so the stream remains decodable.
    pub fn from_frequencies(freqs: &[u64]) -> CodeBook {
        let n = freqs.len();
        let mut lengths = compute_code_lengths(freqs);
        // Enforce the length cap by flattening any over-long code; with the
        // package-merge-free heuristic below this is rare and handled by
        // recomputing with scaled frequencies.
        let mut scale = 1u64;
        while lengths.iter().any(|&l| l > MAX_CODE_LEN) {
            scale *= 2;
            let scaled: Vec<u64> = freqs.iter().map(|&f| if f == 0 { 0 } else { f / scale + 1 }).collect();
            lengths = compute_code_lengths(&scaled);
        }
        let codes = canonical_codes(&lengths);
        CodeBook {
            lengths,
            codes: codes.unwrap_or_else(|| vec![0; n]),
        }
    }

    /// Rebuilds a code book from a serialized length table.
    pub fn from_lengths(lengths: Vec<u8>) -> Option<CodeBook> {
        let codes = canonical_codes(&lengths)?;
        Some(CodeBook { lengths, codes })
    }

    /// Writes `symbol` to the bit stream.
    pub fn encode_symbol(&self, symbol: usize, writer: &mut BitWriter) {
        let len = self.lengths[symbol];
        debug_assert!(len > 0, "encoding a symbol with no code: {symbol}");
        writer.write_code(self.codes[symbol], len);
    }

    /// Expected encoded size in bits for the given frequencies.
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * self.lengths.get(s).copied().unwrap_or(0) as u64)
            .sum()
    }
}

/// A decoding table for a canonical code book.
pub struct Decoder {
    /// (length, code) -> symbol, stored sparsely sorted by (length, code).
    entries: Vec<(u8, u32, u16)>,
}

impl Decoder {
    /// Builds a decoder from a code book.
    pub fn new(book: &CodeBook) -> Decoder {
        let mut entries: Vec<(u8, u32, u16)> = book
            .lengths
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0)
            .map(|(s, &l)| (l, book.codes[s], s as u16))
            .collect();
        entries.sort();
        Decoder { entries }
    }

    /// Reads one symbol from the bit stream.
    pub fn decode_symbol(&self, reader: &mut BitReader<'_>) -> Option<u16> {
        let mut code: u32 = 0;
        let mut len: u8 = 0;
        loop {
            code = (code << 1) | reader.read_bit()? as u32;
            len += 1;
            if len > MAX_CODE_LEN {
                return None;
            }
            // Binary search over entries with this (len, code).
            if let Ok(idx) = self.entries.binary_search_by(|&(l, c, _)| (l, c).cmp(&(len, code))) {
                return Some(self.entries[idx].2);
            }
        }
    }
}

/// Computes Huffman code lengths from frequencies using the classic two-queue
/// tree construction.
fn compute_code_lengths(freqs: &[u64]) -> Vec<u8> {
    #[derive(Clone)]
    struct Node {
        freq: u64,
        left: Option<usize>,
        right: Option<usize>,
        symbol: Option<usize>,
    }

    let mut nodes: Vec<Node> = Vec::new();
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> = std::collections::BinaryHeap::new();
    for (s, &f) in freqs.iter().enumerate() {
        if f > 0 {
            nodes.push(Node {
                freq: f,
                left: None,
                right: None,
                symbol: Some(s),
            });
            heap.push(std::cmp::Reverse((f, nodes.len() - 1)));
        }
    }
    let mut lengths = vec![0u8; freqs.len()];
    match heap.len() {
        0 => return lengths,
        1 => {
            let std::cmp::Reverse((_, idx)) = heap.pop().unwrap();
            lengths[nodes[idx].symbol.unwrap()] = 1;
            return lengths;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let std::cmp::Reverse((f1, n1)) = heap.pop().unwrap();
        let std::cmp::Reverse((f2, n2)) = heap.pop().unwrap();
        nodes.push(Node {
            freq: f1 + f2,
            left: Some(n1),
            right: Some(n2),
            symbol: None,
        });
        heap.push(std::cmp::Reverse((f1 + f2, nodes.len() - 1)));
    }
    // Walk the tree assigning depths.
    let root = heap.pop().unwrap().0 .1;
    let mut stack = vec![(root, 0u8)];
    while let Some((idx, depth)) = stack.pop() {
        let node = nodes[idx].clone();
        if let Some(s) = node.symbol {
            lengths[s] = depth.max(1);
        } else {
            if let Some(l) = node.left {
                stack.push((l, depth + 1));
            }
            if let Some(r) = node.right {
                stack.push((r, depth + 1));
            }
        }
    }
    let _ = nodes.last().map(|n| n.freq); // silence dead-field lint paths
    lengths
}

/// Assigns canonical codes given per-symbol lengths. Returns `None` if the
/// lengths do not describe a prefix-free code (over-subscribed Kraft sum).
fn canonical_codes(lengths: &[u8]) -> Option<Vec<u32>> {
    let max_len = *lengths.iter().max().unwrap_or(&0);
    if max_len == 0 {
        return Some(vec![0; lengths.len()]);
    }
    let mut bl_count = vec![0u32; max_len as usize + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    // Kraft inequality check.
    let mut kraft: u64 = 0;
    for (len, &count) in bl_count.iter().enumerate().skip(1) {
        kraft += (count as u64) << (max_len as usize - len);
    }
    if kraft > 1u64 << max_len {
        return None;
    }
    let mut next_code = vec![0u32; max_len as usize + 2];
    let mut code = 0u32;
    for bits in 1..=max_len as usize {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    let mut codes = vec![0u32; lengths.len()];
    let mut ordered: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
    ordered.sort_by_key(|&s| (lengths[s], s));
    for s in ordered {
        let l = lengths[s] as usize;
        codes[s] = next_code[l];
        next_code[l] += 1;
    }
    Some(codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_symbol_gets_one_bit() {
        let book = CodeBook::from_frequencies(&[0, 10, 0]);
        assert_eq!(book.lengths, vec![0, 1, 0]);
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let freqs = vec![100u64, 50, 10, 1];
        let book = CodeBook::from_frequencies(&freqs);
        assert!(book.lengths[0] <= book.lengths[2]);
        assert!(book.lengths[1] <= book.lengths[3]);
    }

    #[test]
    fn codes_are_prefix_free() {
        let freqs: Vec<u64> = (1..=16).map(|i| i * i).collect();
        let book = CodeBook::from_frequencies(&freqs);
        for a in 0..freqs.len() {
            for b in 0..freqs.len() {
                if a == b {
                    continue;
                }
                let (la, lb) = (book.lengths[a], book.lengths[b]);
                if la == 0 || lb == 0 || la > lb {
                    continue;
                }
                // code a must not be a prefix of code b
                let prefix = book.codes[b] >> (lb - la);
                assert!(prefix != book.codes[a], "code {a} is a prefix of code {b}");
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let symbols: Vec<usize> = (0..2000).map(|i| (i * 7 + i / 13) % 37).collect();
        let mut freqs = vec![0u64; 37];
        for &s in &symbols {
            freqs[s] += 1;
        }
        let book = CodeBook::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        for &s in &symbols {
            book.encode_symbol(s, &mut w);
        }
        let bytes = w.finish();
        let decoder = Decoder::new(&book);
        let mut r = BitReader::new(&bytes);
        let decoded: Vec<usize> = (0..symbols.len())
            .map(|_| decoder.decode_symbol(&mut r).unwrap() as usize)
            .collect();
        assert_eq!(decoded, symbols);
    }

    #[test]
    fn codebook_lengths_roundtrip() {
        let freqs = vec![5u64, 9, 12, 13, 16, 45, 0, 3];
        let book = CodeBook::from_frequencies(&freqs);
        let rebuilt = CodeBook::from_lengths(book.lengths.clone()).unwrap();
        assert_eq!(rebuilt.codes, book.codes);
    }

    #[test]
    fn invalid_lengths_rejected() {
        // Three symbols of length 1 violate Kraft.
        assert!(CodeBook::from_lengths(vec![1, 1, 1]).is_none());
    }

    #[test]
    fn skewed_distribution_compresses_below_fixed_width() {
        // 1000 symbols, 95% are symbol 0 -> average code length must be well
        // under the 5 bits a fixed-width code for 32 symbols would need.
        let mut freqs = vec![1u64; 32];
        freqs[0] = 950;
        let book = CodeBook::from_frequencies(&freqs);
        let bits = book.encoded_bits(&freqs);
        let total: u64 = freqs.iter().sum();
        assert!(bits < total * 3, "expected < 3 bits/symbol, got {bits} for {total}");
    }
}
