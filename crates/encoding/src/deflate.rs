//! DEFLATE-style compression: LZ77 tokens entropy-coded with canonical
//! Huffman codes.
//!
//! Seabed applies standard compression on top of its range/diff/variable-byte
//! ID-list encoding before results travel from workers to the driver and on to
//! the client (§4.5). The paper compares a compact profile (better ratio,
//! slower) against a fast profile and selects "Deflate optimised for speed";
//! both are reproduced here as [`Level::Compact`] and [`Level::Fast`].
//!
//! The container format is self-describing but deliberately simple (it is not
//! bit-compatible with RFC 1951): a one-byte header selects a stored or
//! compressed block, compressed blocks carry the two Huffman code-length
//! tables followed by the token bit stream, and a stored block falls back to
//! the raw bytes whenever compression would not help.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{CodeBook, Decoder};
use crate::lz77::{detokenize, tokenize, Profile, Token};

/// Compression level, mirroring the two configurations in Figure 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Level {
    /// Shallow LZ77 search ("Deflate (fast)").
    Fast,
    /// Deep LZ77 search with lazy matching ("Deflate (compact)").
    Compact,
}

impl Level {
    fn profile(&self) -> Profile {
        match self {
            Level::Fast => Profile::FAST,
            Level::Compact => Profile::COMPACT,
        }
    }
}

const BLOCK_STORED: u8 = 0;
const BLOCK_COMPRESSED: u8 = 1;

/// Length-code table: (symbol base length, extra bits), DEFLATE-compatible.
const LENGTH_CODES: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// Distance-code table: (base distance, extra bits), DEFLATE-compatible.
const DIST_CODES: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Number of literal/length symbols: 256 literals + 29 length codes.
const LITLEN_SYMBOLS: usize = 256 + LENGTH_CODES.len();

fn length_to_symbol(len: u16) -> (usize, u8, u32) {
    for (i, &(base, extra)) in LENGTH_CODES.iter().enumerate().rev() {
        if len >= base {
            return (256 + i, extra, (len - base) as u32);
        }
    }
    unreachable!("length below MIN_MATCH")
}

fn dist_to_symbol(dist: u16) -> (usize, u8, u32) {
    for (i, &(base, extra)) in DIST_CODES.iter().enumerate().rev() {
        if dist >= base {
            return (i, extra, (dist - base) as u32);
        }
    }
    unreachable!("distance below 1")
}

fn pack_lengths(lengths: &[u8], out: &mut Vec<u8>) {
    // Two 4-bit lengths per byte; MAX_CODE_LEN is 15 so they fit.
    let mut iter = lengths.chunks(2);
    for chunk in &mut iter {
        let lo = chunk[0] & 0x0f;
        let hi = chunk.get(1).copied().unwrap_or(0) & 0x0f;
        out.push(lo | (hi << 4));
    }
}

fn unpack_lengths(data: &[u8], count: usize) -> Option<(Vec<u8>, usize)> {
    let bytes_needed = count.div_ceil(2);
    if data.len() < bytes_needed {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let byte = data[i / 2];
        out.push(if i % 2 == 0 { byte & 0x0f } else { byte >> 4 });
    }
    Some((out, bytes_needed))
}

/// Compresses `data` at the given level.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let tokens = tokenize(data, &level.profile());

    // Gather symbol frequencies.
    let mut litlen_freq = vec![0u64; LITLEN_SYMBOLS];
    let mut dist_freq = vec![0u64; DIST_CODES.len()];
    for t in &tokens {
        match *t {
            Token::Literal(b) => litlen_freq[b as usize] += 1,
            Token::Match { length, distance } => {
                litlen_freq[length_to_symbol(length).0] += 1;
                dist_freq[dist_to_symbol(distance).0] += 1;
            }
        }
    }
    let litlen_book = CodeBook::from_frequencies(&litlen_freq);
    let dist_book = CodeBook::from_frequencies(&dist_freq);

    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    out.push(BLOCK_COMPRESSED);
    // Original length and token count as little-endian u32 (ID lists and
    // serialized results are far below 4 GiB per block).
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(&(tokens.len() as u32).to_le_bytes());
    pack_lengths(&litlen_book.lengths, &mut out);
    pack_lengths(&dist_book.lengths, &mut out);

    let mut writer = BitWriter::new();
    for t in &tokens {
        match *t {
            Token::Literal(b) => litlen_book.encode_symbol(b as usize, &mut writer),
            Token::Match { length, distance } => {
                let (sym, extra, extra_bits) = length_to_symbol(length);
                litlen_book.encode_symbol(sym, &mut writer);
                writer.write_bits(extra_bits, extra);
                let (dsym, dextra, dextra_bits) = dist_to_symbol(distance);
                dist_book.encode_symbol(dsym, &mut writer);
                writer.write_bits(dextra_bits, dextra);
            }
        }
    }
    out.extend_from_slice(&writer.finish());

    if out.len() > data.len() {
        // Compression did not pay off; emit a stored block.
        let mut stored = Vec::with_capacity(data.len() + 5);
        stored.push(BLOCK_STORED);
        stored.extend_from_slice(&(data.len() as u32).to_le_bytes());
        stored.extend_from_slice(data);
        return stored;
    }
    out
}

/// Decompresses data produced by [`compress`]. Returns `None` on malformed
/// input.
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    let (&kind, rest) = data.split_first()?;
    match kind {
        BLOCK_STORED => {
            if rest.len() < 4 {
                return None;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            let body = &rest[4..];
            if body.len() != len {
                return None;
            }
            Some(body.to_vec())
        }
        BLOCK_COMPRESSED => {
            if rest.len() < 8 {
                return None;
            }
            let orig_len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
            let n_tokens = u32::from_le_bytes(rest[4..8].try_into().unwrap()) as usize;
            let mut pos = 8;
            let (litlen_lengths, used) = unpack_lengths(&rest[pos..], LITLEN_SYMBOLS)?;
            pos += used;
            let (dist_lengths, used) = unpack_lengths(&rest[pos..], DIST_CODES.len())?;
            pos += used;
            let litlen_book = CodeBook::from_lengths(litlen_lengths)?;
            let dist_book = CodeBook::from_lengths(dist_lengths)?;
            let litlen_dec = Decoder::new(&litlen_book);
            let dist_dec = Decoder::new(&dist_book);

            let mut reader = BitReader::new(&rest[pos..]);
            let mut tokens = Vec::with_capacity(n_tokens);
            for _ in 0..n_tokens {
                let sym = litlen_dec.decode_symbol(&mut reader)? as usize;
                if sym < 256 {
                    tokens.push(Token::Literal(sym as u8));
                } else {
                    let (base, extra) = LENGTH_CODES[sym - 256];
                    let length = base + reader.read_bits(extra)? as u16;
                    let dsym = dist_dec.decode_symbol(&mut reader)? as usize;
                    let (dbase, dextra) = *DIST_CODES.get(dsym)?;
                    let distance = dbase + reader.read_bits(dextra)? as u16;
                    tokens.push(Token::Match { length, distance });
                }
            }
            let out = detokenize(&tokens);
            if out.len() != orig_len {
                return None;
            }
            Some(out)
        }
        _ => None,
    }
}

/// Convenience: compressed size of `data` at `level` without keeping the
/// output (used by the Figure 8 harness to report result sizes).
pub fn compressed_len(data: &[u8], level: Level) -> usize {
    compress(data, level).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        for level in [Level::Fast, Level::Compact] {
            let c = compress(data, level);
            assert_eq!(decompress(&c).as_deref(), Some(data), "level {level:?}");
        }
    }

    #[test]
    fn empty_input() {
        roundtrip(b"");
    }

    #[test]
    fn short_inputs_use_stored_blocks() {
        let data = b"hi";
        let c = compress(data, Level::Fast);
        assert_eq!(c[0], BLOCK_STORED);
        assert_eq!(decompress(&c).as_deref(), Some(&data[..]));
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data: Vec<u8> = b"0123456789".iter().cycle().take(50_000).cloned().collect();
        let c = compress(&data, Level::Compact);
        assert!(c.len() < data.len() / 10, "got {} bytes for {}", c.len(), data.len());
        roundtrip(&data);
    }

    #[test]
    fn text_like_data_roundtrips() {
        let mut data = Vec::new();
        for i in 0..3000 {
            data.extend_from_slice(format!("user={} country=C{} revenue={}\n", i, i % 37, i * 13).as_bytes());
        }
        roundtrip(&data);
        let c = compress(&data, Level::Compact);
        assert!(c.len() < data.len() / 2);
    }

    #[test]
    fn incompressible_data_does_not_blow_up() {
        // Pseudo-random bytes: stored fallback keeps overhead to 5 bytes.
        let data: Vec<u8> = (0..10_000u64)
            .map(|i| (i.wrapping_mul(0x9e3779b97f4a7c15) >> 33) as u8)
            .collect();
        let c = compress(&data, Level::Fast);
        assert!(c.len() <= data.len() + 5);
        roundtrip(&data);
    }

    #[test]
    fn compact_no_larger_than_fast_on_structured_data() {
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.extend_from_slice(&(i / 3).to_le_bytes());
        }
        let fast = compress(&data, Level::Fast);
        let compact = compress(&data, Level::Compact);
        assert!(compact.len() <= fast.len() + 8);
        roundtrip(&data);
    }

    #[test]
    fn corrupted_input_is_rejected_not_panicking() {
        let data: Vec<u8> = b"seabed".iter().cycle().take(5000).cloned().collect();
        let mut c = compress(&data, Level::Fast);
        // Truncate the bit stream.
        c.truncate(c.len() / 2);
        assert!(decompress(&c).is_none());
        // Unknown block type.
        assert!(decompress(&[9, 0, 0, 0, 0]).is_none());
    }

    #[test]
    fn varbyte_encoded_id_lists_compress() {
        // Simulates the actual Seabed payload: VB+diff encoded ID lists with
        // mostly-small deltas compress further under deflate.
        let deltas: Vec<u64> = (0..20_000).map(|i| if i % 100 == 0 { 1000 } else { 1 }).collect();
        let payload = crate::varint::encode_all(&deltas);
        let c = compress(&payload, Level::Fast);
        assert!(c.len() < payload.len());
        assert_eq!(decompress(&c).unwrap(), payload);
    }
}
