//! Variable-byte (VB) integer encoding.
//!
//! Seabed's ASHE ciphertexts carry a multiset of row identifiers; §4.5 keeps
//! those ID lists small by combining range encoding, differential encoding and
//! variable-byte encoding (Table 3). This module implements the variable-byte
//! layer: each integer is stored in the minimum number of 7-bit groups, with
//! the high bit of every byte flagging whether more bytes follow.

/// Appends the VB encoding of `value` to `out`; returns the number of bytes
/// written.
pub fn encode_u64(mut value: u64, out: &mut Vec<u8>) -> usize {
    let mut written = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            written += 1;
            return written;
        }
        out.push(byte | 0x80);
        written += 1;
    }
}

/// Decodes a VB integer from `data` starting at `pos`.
///
/// Returns the decoded value and the new position, or `None` if the input is
/// truncated or overlong (more than 10 bytes).
pub fn decode_u64(data: &[u8], pos: usize) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    let mut i = pos;
    loop {
        let byte = *data.get(i)?;
        i += 1;
        if shift >= 64 {
            return None;
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some((value, i));
        }
        shift += 7;
        if i - pos > 10 {
            return None;
        }
    }
}

/// Encodes a slice of integers back-to-back.
pub fn encode_all(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for &v in values {
        encode_u64(v, &mut out);
    }
    out
}

/// Decodes all VB integers in `data`. Returns `None` on malformed input.
pub fn decode_all(data: &[u8]) -> Option<Vec<u64>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < data.len() {
        let (v, next) = decode_u64(data, pos)?;
        out.push(v);
        pos = next;
    }
    Some(out)
}

/// Number of bytes the VB encoding of `value` occupies.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_take_one_byte() {
        for v in 0..128u64 {
            let mut out = Vec::new();
            assert_eq!(encode_u64(v, &mut out), 1);
            assert_eq!(decode_u64(&out, 0), Some((v, 1)));
        }
    }

    #[test]
    fn boundary_values() {
        for v in [127u64, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            encode_u64(v, &mut out);
            assert_eq!(decode_u64(&out, 0).unwrap().0, v);
            assert_eq!(out.len(), encoded_len(v));
        }
    }

    #[test]
    fn batch_roundtrip() {
        let values: Vec<u64> = vec![0, 1, 127, 128, 300, 1_000_000, u64::MAX, 42];
        let encoded = encode_all(&values);
        assert_eq!(decode_all(&encoded).unwrap(), values);
    }

    #[test]
    fn truncated_input_rejected() {
        let mut out = Vec::new();
        encode_u64(1_000_000, &mut out);
        assert!(decode_u64(&out[..out.len() - 1], 0).is_none());
    }

    #[test]
    fn smaller_numbers_use_fewer_bytes() {
        assert!(encoded_len(5) < encoded_len(500));
        assert!(encoded_len(500) < encoded_len(5_000_000));
        assert_eq!(encoded_len(u64::MAX), 10);
    }
}
