//! The ASHE encryption scheme (§3.1–3.2 of the paper).
//!
//! ASHE encrypts a value `m ∈ Z_n` under identifier `i` as
//!
//! ```text
//! Enc_k(m, i) = ( (m - F_k(i) + F_k(i-1)) mod n , {i} )
//! ```
//!
//! Two ciphertexts are "added" by adding the group elements and unioning the
//! identifier sets; decryption re-derives the pseudo-random masks from the
//! identifiers and strips them:
//!
//! ```text
//! Dec_k(c, S) = ( c + Σ_{i ∈ S} (F_k(i) - F_k(i-1)) ) mod n
//! ```
//!
//! Because the masks telescope, the sum over a *contiguous* range `[a, b]`
//! needs only two PRF evaluations — `F_k(b) - F_k(a-1)` — which is the
//! property Seabed's consecutive row IDs are designed to exploit.
//!
//! Seabed instantiates `Z_n` as the wrap-around group of the measure's native
//! width (`2^64` here, `modulus = 0`), making the reduction free, but any
//! modulus is supported.

use crate::idset::IdSet;
use seabed_crypto::prf::{AnyPrf, Prf, PrfKind};
use seabed_crypto::{AesPrf, FixedUint};

/// An ASHE ciphertext: a masked group element plus the identifiers whose masks
/// it carries.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AsheCiphertext {
    /// The masked (randomized-looking) group element.
    pub value: u64,
    /// Identifiers of the rows folded into this ciphertext.
    pub ids: IdSet,
}

impl AsheCiphertext {
    /// The additive identity: encrypts "nothing" and can seed a fold.
    pub fn zero() -> AsheCiphertext {
        AsheCiphertext {
            value: 0,
            ids: IdSet::new(),
        }
    }

    /// Number of rows aggregated into this ciphertext.
    pub fn row_count(&self) -> u64 {
        self.ids.count()
    }
}

/// The ASHE scheme instance for one column.
#[derive(Clone)]
pub struct AsheScheme {
    prf: AnyPrf,
    /// Packed AES PRF used when `packed` is true: one AES block yields the
    /// masks of two adjacent identifiers (§4.3's batching optimisation).
    packed_prf: Option<AesPrf>,
    modulus: u64,
}

impl AsheScheme {
    /// Creates a scheme over the 2^64 wrap-around group with the AES PRF —
    /// the configuration Seabed's prototype uses for 64-bit measures.
    pub fn new(key: &[u8; 16]) -> AsheScheme {
        AsheScheme {
            prf: AnyPrf::new(PrfKind::Aes, key),
            packed_prf: Some(AesPrf::new(key)),
            modulus: 0,
        }
    }

    /// Creates a scheme with an explicit PRF kind and modulus (`0` meaning
    /// `2^64`).
    pub fn with_options(key: &[u8; 16], kind: PrfKind, modulus: u64) -> AsheScheme {
        let packed_prf = match kind {
            PrfKind::Aes => Some(AesPrf::new(key)),
            PrfKind::Hash => None,
        };
        AsheScheme {
            prf: AnyPrf::new(kind, key),
            packed_prf,
            modulus,
        }
    }

    /// The plaintext modulus (`0` = `2^64`).
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Evaluates `F_k(id) mod n`.
    ///
    /// With the AES PRF, identifiers are packed two per AES block: identifier
    /// `i` reads word `i & 1` of block `i >> 1`, halving the number of AES
    /// operations for bulk encryption of consecutive rows.
    pub fn mask(&self, id: u64) -> u64 {
        match &self.packed_prf {
            Some(prf) => {
                let words = prf.eval_wide(id >> 1);
                let raw = words[(id & 1) as usize];
                if self.modulus == 0 {
                    raw
                } else {
                    raw % self.modulus
                }
            }
            None => self.prf.eval(id, self.modulus),
        }
    }

    /// Batch counterpart of [`AsheScheme::mask`]: fills `out` with the masks
    /// of the consecutive (wrapping) identifiers `first_id, first_id + 1, …`.
    ///
    /// With the AES PRF the packed two-identifiers-per-block layout means a
    /// run of N identifiers costs ~N/2 block encryptions, expanded through
    /// the batched keystream kernel in a handful of dispatches instead of one
    /// per identifier. Output is identical to calling [`AsheScheme::mask`]
    /// per identifier.
    pub fn mask_run(&self, first_id: u64, out: &mut [u64]) {
        match &self.packed_prf {
            Some(prf) => {
                // The packed block index `id >> 1` is only monotonic while the
                // identifier space does not wrap past u64::MAX, so split the
                // run into non-wrapping segments (at most two in practice).
                let mut offset = 0usize;
                while offset < out.len() {
                    let start = first_id.wrapping_add(offset as u64);
                    let until_wrap = (u64::MAX - start) as u128 + 1;
                    let seg = ((out.len() - offset) as u128).min(until_wrap) as usize;
                    self.mask_run_segment(prf, start, &mut out[offset..offset + seg]);
                    offset += seg;
                }
            }
            None => self.prf.eval_run(first_id, self.modulus, out),
        }
    }

    /// Masks for the non-wrapping identifier segment `first_id..=first_id+len-1`.
    fn mask_run_segment(&self, prf: &AesPrf, first_id: u64, out: &mut [u64]) {
        const IDS_PER_CHUNK: usize = 64;
        let mut wide = [[0u64; 2]; IDS_PER_CHUNK / 2 + 1];
        for (chunk_index, chunk) in out.chunks_mut(IDS_PER_CHUNK).enumerate() {
            let chunk_first = first_id + (chunk_index * IDS_PER_CHUNK) as u64;
            let chunk_last = chunk_first + (chunk.len() - 1) as u64;
            let first_block = chunk_first >> 1;
            let nblocks = ((chunk_last >> 1) - first_block + 1) as usize;
            prf.eval_wide_run(first_block, &mut wide[..nblocks]);
            for (i, value) in chunk.iter_mut().enumerate() {
                let id = chunk_first + i as u64;
                let raw = wide[((id >> 1) - first_block) as usize][(id & 1) as usize];
                *value = if self.modulus == 0 { raw } else { raw % self.modulus };
            }
        }
    }

    #[inline]
    fn reduce(&self, v: u128) -> u64 {
        if self.modulus == 0 {
            v as u64
        } else {
            (v % self.modulus as u128) as u64
        }
    }

    #[inline]
    fn add_group(&self, a: u64, b: u64) -> u64 {
        if self.modulus == 0 {
            a.wrapping_add(b)
        } else {
            self.reduce(a as u128 + b as u128)
        }
    }

    #[inline]
    fn sub_group(&self, a: u64, b: u64) -> u64 {
        if self.modulus == 0 {
            a.wrapping_sub(b)
        } else {
            let m = self.modulus as u128;
            (((a as u128 + m) - (b as u128 % m)) % m) as u64
        }
    }

    /// Encrypts `m` under identifier `id`.
    ///
    /// The caller must never reuse an identifier for a different plaintext in
    /// the same column; Seabed's encryption module assigns consecutive row IDs.
    pub fn encrypt(&self, m: u64, id: u64) -> AsheCiphertext {
        let mask_cur = self.mask(id);
        let mask_prev = self.mask(id.wrapping_sub(1));
        let reduced_m = if self.modulus == 0 { m } else { m % self.modulus };
        let value = self.add_group(self.sub_group(reduced_m, mask_cur), mask_prev);
        AsheCiphertext {
            value,
            ids: IdSet::single(id),
        }
    }

    /// Encrypts a run of values under the consecutive (wrapping) identifiers
    /// `first_id, first_id + 1, …` — the layout Seabed's encryption module
    /// produces — re-deriving each shared boundary mask once.
    ///
    /// A run of N values needs the N+1 masks of identifiers
    /// `first_id - 1 ..= first_id + N - 1`; with the packed AES PRF that is
    /// ~(N+1)/2 batched block encryptions, where per-value
    /// [`AsheScheme::encrypt`] calls would pay 2 unbatched blocks per value.
    /// Ciphertexts are identical to the scalar path's.
    pub fn encrypt_run(&self, values: &[u64], first_id: u64) -> Vec<AsheCiphertext> {
        if values.is_empty() {
            return Vec::new();
        }
        let mut masks = vec![0u64; values.len() + 1];
        self.mask_run(first_id.wrapping_sub(1), &mut masks);
        values
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let id = first_id.wrapping_add(i as u64);
                let reduced_m = if self.modulus == 0 { m } else { m % self.modulus };
                // masks[i] = F(id - 1), masks[i + 1] = F(id)
                let value = self.add_group(self.sub_group(reduced_m, masks[i + 1]), masks[i]);
                AsheCiphertext {
                    value,
                    ids: IdSet::single(id),
                }
            })
            .collect()
    }

    /// The homomorphic ⊕: adds the group elements and unions the ID sets.
    pub fn add(&self, a: &AsheCiphertext, b: &AsheCiphertext) -> AsheCiphertext {
        AsheCiphertext {
            value: self.add_group(a.value, b.value),
            ids: a.ids.union(&b.ids),
        }
    }

    /// Folds an iterator of ciphertexts into their homomorphic sum.
    pub fn sum<'a, I: IntoIterator<Item = &'a AsheCiphertext>>(&self, items: I) -> AsheCiphertext {
        items
            .into_iter()
            .fold(AsheCiphertext::zero(), |acc, c| self.add(&acc, c))
    }

    /// Decrypts a ciphertext, re-deriving one pair of PRF masks per run of
    /// contiguous identifiers (§3.2's telescoping optimisation).
    ///
    /// For an explicit modulus the boundary masks are accumulated at full
    /// width in stack-allocated [`FixedUint`] sums — no per-term `u128`
    /// reduction, no heap traffic — and reduced once at the end; the group
    /// is commutative so the result matches the term-by-term reference.
    pub fn decrypt(&self, c: &AsheCiphertext) -> u64 {
        if self.modulus == 0 {
            let mut acc = c.value;
            for (end, before_start) in c.ids.boundary_pairs() {
                acc = acc.wrapping_add(self.mask(end)).wrapping_sub(self.mask(before_start));
            }
            acc
        } else {
            let mut added = FixedUint::<2>::ZERO;
            let mut subtracted = FixedUint::<2>::ZERO;
            for (end, before_start) in c.ids.boundary_pairs() {
                added.add_assign_u64(self.mask(end));
                subtracted.add_assign_u64(self.mask(before_start));
            }
            let delta = self.sub_group(added.rem_u64(self.modulus), subtracted.rem_u64(self.modulus));
            self.add_group(c.value, delta)
        }
    }

    /// Number of PRF evaluations [`AsheScheme::decrypt`] will perform for this
    /// ciphertext — two per run, independent of the number of rows.
    pub fn decrypt_prf_evals(&self, c: &AsheCiphertext) -> usize {
        c.ids.run_count() * 2
    }

    /// Decrypts the naïve way, evaluating the PRF for every identifier rather
    /// than only at run boundaries. Exposed for the ablation benchmark that
    /// quantifies the value of the telescoping optimisation.
    pub fn decrypt_without_telescoping(&self, c: &AsheCiphertext) -> u64 {
        let mut acc = c.value;
        for id in c.ids.iter() {
            let mask_cur = self.mask(id);
            let mask_prev = self.mask(id.wrapping_sub(1));
            acc = self.add_group(acc, self.sub_group(mask_cur, mask_prev));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> AsheScheme {
        AsheScheme::new(&[11u8; 16])
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let s = scheme();
        for (m, id) in [(0u64, 0u64), (1, 1), (42, 7), (u64::MAX, 123), (1 << 40, 1 << 30)] {
            let c = s.encrypt(m, id);
            assert_eq!(s.decrypt(&c), m);
        }
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let s = scheme();
        // Same plaintext under different IDs yields different ciphertext values.
        assert_ne!(s.encrypt(5, 1).value, s.encrypt(5, 2).value);
        // Different keys yield different ciphertexts for the same (m, id).
        let other = AsheScheme::new(&[12u8; 16]);
        assert_ne!(s.encrypt(5, 1).value, other.encrypt(5, 1).value);
    }

    #[test]
    fn homomorphic_addition_two_values() {
        let s = scheme();
        let c1 = s.encrypt(1000, 1);
        let c2 = s.encrypt(2000, 2);
        let sum = s.add(&c1, &c2);
        assert_eq!(s.decrypt(&sum), 3000);
        assert_eq!(sum.row_count(), 2);
    }

    #[test]
    fn sum_of_contiguous_range_is_single_run() {
        let s = scheme();
        let values: Vec<u64> = (0..1000).map(|i| i * 3 + 1).collect();
        let cts: Vec<AsheCiphertext> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| s.encrypt(v, i as u64))
            .collect();
        let sum = s.sum(&cts);
        assert_eq!(sum.ids.run_count(), 1);
        assert_eq!(s.decrypt_prf_evals(&sum), 2);
        assert_eq!(s.decrypt(&sum), values.iter().sum::<u64>());
    }

    #[test]
    fn sum_of_scattered_rows() {
        let s = scheme();
        let selected: Vec<u64> = (0..500u64).filter(|i| i % 7 == 0).collect();
        let sum = s.sum(
            selected
                .iter()
                .map(|&i| s.encrypt(i * 10, i))
                .collect::<Vec<_>>()
                .iter(),
        );
        assert_eq!(s.decrypt(&sum), selected.iter().map(|i| i * 10).sum::<u64>());
        assert_eq!(sum.row_count(), selected.len() as u64);
    }

    #[test]
    fn wrapping_overflow_is_modular() {
        let s = scheme();
        let c1 = s.encrypt(u64::MAX, 10);
        let c2 = s.encrypt(5, 11);
        // (2^64 - 1) + 5 = 4 mod 2^64
        assert_eq!(s.decrypt(&s.add(&c1, &c2)), 4);
    }

    #[test]
    fn explicit_modulus_group() {
        let s = AsheScheme::with_options(&[3u8; 16], PrfKind::Aes, 1_000_003);
        let values = [999_999u64, 7, 123_456];
        let cts: Vec<AsheCiphertext> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| s.encrypt(v, i as u64))
            .collect();
        let sum = s.sum(&cts);
        assert_eq!(s.decrypt(&sum), values.iter().sum::<u64>() % 1_000_003);
    }

    #[test]
    fn hash_prf_variant_roundtrips() {
        let s = AsheScheme::with_options(&[9u8; 16], PrfKind::Hash, 0);
        let c1 = s.encrypt(111, 0);
        let c2 = s.encrypt(222, 1);
        assert_eq!(s.decrypt(&s.add(&c1, &c2)), 333);
    }

    #[test]
    fn telescoped_and_naive_decryption_agree() {
        let s = scheme();
        let cts: Vec<AsheCiphertext> = (10..60u64).map(|i| s.encrypt(i, i)).collect();
        let sum = s.sum(&cts);
        assert_eq!(s.decrypt(&sum), s.decrypt_without_telescoping(&sum));
    }

    #[test]
    fn zero_ciphertext_is_identity() {
        let s = scheme();
        let c = s.encrypt(77, 3);
        let sum = s.add(&AsheCiphertext::zero(), &c);
        assert_eq!(s.decrypt(&sum), 77);
        assert_eq!(s.decrypt(&AsheCiphertext::zero()), 0);
    }

    #[test]
    fn id_zero_uses_wraparound_predecessor() {
        // Row 0's "previous" mask is F(u64::MAX); make sure encryption and
        // decryption agree on that convention.
        let s = scheme();
        let c = s.encrypt(12345, 0);
        assert_eq!(s.decrypt(&c), 12345);
        let sum = s.sum(&[s.encrypt(1, 0), s.encrypt(2, 1), s.encrypt(3, 2)]);
        assert_eq!(s.decrypt(&sum), 6);
    }

    #[test]
    fn mask_run_matches_scalar_mask() {
        let schemes = [
            scheme(),
            AsheScheme::with_options(&[5u8; 16], PrfKind::Aes, 1_000_003),
            AsheScheme::with_options(&[5u8; 16], PrfKind::Hash, 0),
            AsheScheme::with_options(&[5u8; 16], PrfKind::Hash, 97),
        ];
        for s in &schemes {
            for (start, len) in [
                (0u64, 0usize),
                (0, 1),
                (1, 2),
                (6, 7),
                (3, 64),
                (10, 129),
                (u64::MAX - 5, 9),
            ] {
                let mut run = vec![0u64; len];
                s.mask_run(start, &mut run);
                for (i, got) in run.iter().enumerate() {
                    assert_eq!(*got, s.mask(start.wrapping_add(i as u64)), "start={start} i={i}");
                }
            }
        }
    }

    #[test]
    fn encrypt_run_matches_scalar_encrypt() {
        let schemes = [
            scheme(),
            AsheScheme::with_options(&[5u8; 16], PrfKind::Aes, 1_000_003),
            AsheScheme::with_options(&[5u8; 16], PrfKind::Hash, 0),
        ];
        for s in &schemes {
            // first_id = 0 exercises the wrap-around predecessor u64::MAX;
            // first_id near u64::MAX exercises identifier wrap mid-run.
            for first_id in [0u64, 1, 7, 1 << 40, u64::MAX - 3] {
                let values: Vec<u64> = (0..70u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
                for len in [0usize, 1, 2, 70] {
                    let batch = s.encrypt_run(&values[..len], first_id);
                    assert_eq!(batch.len(), len);
                    for (i, c) in batch.iter().enumerate() {
                        let reference = s.encrypt(values[i], first_id.wrapping_add(i as u64));
                        assert_eq!(*c, reference, "first_id={first_id} i={i}");
                        assert_eq!(
                            s.decrypt(c),
                            if s.modulus() == 0 {
                                values[i]
                            } else {
                                values[i] % s.modulus()
                            }
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn packed_prf_consistency_with_scheme_reuse() {
        // The packed AES PRF must give the same mask for the same id across
        // calls and across clones of the scheme.
        let s = scheme();
        let s2 = s.clone();
        for id in 0..64u64 {
            assert_eq!(s.mask(id), s2.mask(id));
        }
    }
}
