//! Bulk encryption and decryption of measure columns.
//!
//! Seabed's encryption module uploads whole columns at a time and §4.3 calls
//! out two client-side optimisations: packing several pseudo-random values
//! into one AES operation (handled inside [`AsheScheme::mask`]) and running
//! encryption/decryption across multiple threads, which is trivially possible
//! because every row's mask only depends on its identifier.

use crate::scheme::{AsheCiphertext, AsheScheme};

/// A column of ASHE-encrypted values with consecutive identifiers
/// `[start_id, start_id + len)`. This is the layout the engine stores: one
/// `u64` ciphertext word per row plus the implicit identifier.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EncryptedColumn {
    /// First row identifier.
    pub start_id: u64,
    /// Masked values, one per row.
    pub values: Vec<u64>,
}

impl EncryptedColumn {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The identifier of row `index`.
    pub fn id_of(&self, index: usize) -> u64 {
        self.start_id + index as u64
    }

    /// Reconstructs the full ciphertext of a single row.
    pub fn ciphertext_at(&self, index: usize) -> AsheCiphertext {
        AsheCiphertext {
            value: self.values[index],
            ids: crate::idset::IdSet::single(self.id_of(index)),
        }
    }
}

/// Encrypts a column of plaintext values with consecutive identifiers starting
/// at `start_id` on a single thread, through the batched run kernel
/// ([`AsheScheme::encrypt_run`]): one amortised keystream expansion for the
/// whole column instead of two AES dispatches per row.
pub fn encrypt_column(scheme: &AsheScheme, values: &[u64], start_id: u64) -> EncryptedColumn {
    let out = scheme
        .encrypt_run(values, start_id)
        .into_iter()
        .map(|c| c.value)
        .collect();
    EncryptedColumn { start_id, values: out }
}

/// Per-row scalar reference for [`encrypt_column`], kept as the differential
/// oracle the batched path is pinned against.
pub fn encrypt_column_scalar(scheme: &AsheScheme, values: &[u64], start_id: u64) -> EncryptedColumn {
    let mut out = Vec::with_capacity(values.len());
    for (offset, &m) in values.iter().enumerate() {
        out.push(scheme.encrypt(m, start_id + offset as u64).value);
    }
    EncryptedColumn { start_id, values: out }
}

/// Encrypts a column using `threads` worker threads (§4.3's multi-threaded
/// encryption). Falls back to the sequential path for small inputs.
pub fn encrypt_column_parallel(scheme: &AsheScheme, values: &[u64], start_id: u64, threads: usize) -> EncryptedColumn {
    let threads = threads.max(1);
    if threads == 1 || values.len() < 4096 {
        return encrypt_column(scheme, values, start_id);
    }
    let chunk_size = values.len().div_ceil(threads);
    let mut out = vec![0u64; values.len()];
    std::thread::scope(|scope| {
        for (chunk_idx, (input, output)) in values.chunks(chunk_size).zip(out.chunks_mut(chunk_size)).enumerate() {
            let chunk_start = start_id + (chunk_idx * chunk_size) as u64;
            scope.spawn(move || {
                for (c, slot) in scheme
                    .encrypt_run(input, chunk_start)
                    .into_iter()
                    .zip(output.iter_mut())
                {
                    *slot = c.value;
                }
            });
        }
    });
    EncryptedColumn { start_id, values: out }
}

/// Decrypts a whole encrypted column back to plaintext (used by tests and by
/// the proxy when a query projects raw measure values).
pub fn decrypt_column(scheme: &AsheScheme, column: &EncryptedColumn) -> Vec<u64> {
    column
        .values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            scheme.decrypt(&AsheCiphertext {
                value: v,
                ids: crate::idset::IdSet::single(column.id_of(i)),
            })
        })
        .collect()
}

/// Server-side aggregation over an encrypted column: sums the rows whose
/// zero-based index satisfies `select`, producing a single ciphertext. This is
/// the inner loop every Seabed worker runs.
pub fn aggregate_where<F: Fn(usize) -> bool>(
    scheme: &AsheScheme,
    column: &EncryptedColumn,
    select: F,
) -> AsheCiphertext {
    let mut value_acc: u64 = 0;
    let mut ids = crate::idset::IdSet::new();
    let modulus = scheme.modulus();
    for (i, &v) in column.values.iter().enumerate() {
        if select(i) {
            value_acc = if modulus == 0 {
                value_acc.wrapping_add(v)
            } else {
                ((value_acc as u128 + v as u128) % modulus as u128) as u64
            };
            ids.push_ordered(column.id_of(i));
        }
    }
    AsheCiphertext { value: value_acc, ids }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> AsheScheme {
        AsheScheme::new(&[42u8; 16])
    }

    #[test]
    fn column_roundtrip() {
        let s = scheme();
        let values: Vec<u64> = (0..500).map(|i| i * 17 + 3).collect();
        let col = encrypt_column(&s, &values, 1000);
        assert_eq!(decrypt_column(&s, &col), values);
    }

    #[test]
    fn batched_column_matches_scalar_reference() {
        let s = scheme();
        for (start, len) in [(0u64, 0usize), (0, 1), (7, 3), (1000, 257)] {
            let values: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x1234_5678_9abc_def1)).collect();
            assert_eq!(
                encrypt_column(&s, &values, start),
                encrypt_column_scalar(&s, &values, start),
                "start={start} len={len}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let s = scheme();
        let values: Vec<u64> = (0..10_000).map(|i| i ^ 0xdead).collect();
        let seq = encrypt_column(&s, &values, 0);
        let par = encrypt_column_parallel(&s, &values, 0, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_small_input_falls_back() {
        let s = scheme();
        let values = vec![1u64, 2, 3];
        assert_eq!(
            encrypt_column_parallel(&s, &values, 7, 8),
            encrypt_column(&s, &values, 7)
        );
    }

    #[test]
    fn aggregate_full_column() {
        let s = scheme();
        let values: Vec<u64> = (0..2000).collect();
        let col = encrypt_column(&s, &values, 0);
        let agg = aggregate_where(&s, &col, |_| true);
        assert_eq!(agg.ids.run_count(), 1);
        assert_eq!(s.decrypt(&agg), values.iter().sum::<u64>());
    }

    #[test]
    fn aggregate_with_predicate() {
        let s = scheme();
        let values: Vec<u64> = (0..2000).collect();
        let col = encrypt_column(&s, &values, 500);
        let agg = aggregate_where(&s, &col, |i| i % 2 == 0);
        let expected: u64 = values
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, v)| v)
            .sum();
        assert_eq!(s.decrypt(&agg), expected);
        assert_eq!(agg.row_count(), 1000);
    }

    #[test]
    fn aggregate_empty_selection_is_zero() {
        let s = scheme();
        let col = encrypt_column(&s, &[5, 6, 7], 0);
        let agg = aggregate_where(&s, &col, |_| false);
        assert_eq!(s.decrypt(&agg), 0);
        assert!(agg.ids.is_empty());
    }

    #[test]
    fn ciphertext_at_matches_direct_encryption() {
        let s = scheme();
        let col = encrypt_column(&s, &[10, 20, 30], 100);
        assert_eq!(col.ciphertext_at(1), s.encrypt(20, 101));
        assert_eq!(col.id_of(2), 102);
    }

    #[test]
    fn partial_sums_from_two_partitions_combine() {
        // Mirrors the worker/driver split: each partition aggregates its own
        // rows, the driver ⊕-combines the partials.
        let s = scheme();
        let values: Vec<u64> = (0..1000).map(|i| i + 1).collect();
        let col_a = encrypt_column(&s, &values[..600], 0);
        let col_b = encrypt_column(&s, &values[600..], 600);
        let part_a = aggregate_where(&s, &col_a, |_| true);
        let part_b = aggregate_where(&s, &col_b, |_| true);
        let total = s.add(&part_a, &part_b);
        assert_eq!(total.ids.run_count(), 1, "adjacent partitions merge into one run");
        assert_eq!(s.decrypt(&total), values.iter().sum::<u64>());
    }
}
