//! # seabed-ashe
//!
//! ASHE — the Additively Symmetric Homomorphic Encryption scheme at the heart
//! of Seabed (Papadimitriou et al., OSDI 2016, §3.1–3.2).
//!
//! ASHE replaces the Paillier cryptosystem that CryptDB/Monomi use for
//! encrypted aggregation. Because the data producer and the analyst share a
//! secret key in the BI setting, symmetric masking is sufficient: each value
//! is blinded with the difference of two PRF outputs keyed by the row
//! identifier, addition of ciphertexts is plain modular addition plus a union
//! of identifier sets, and the masks of contiguous identifier ranges telescope
//! so that decrypting the sum of a billion consecutive rows costs just two PRF
//! evaluations.
//!
//! * [`scheme`] — `Enc`/`Dec`/`⊕` and the telescoping decryption;
//! * [`idset`] — run-compressed identifier sets and their serialization;
//! * [`batch`] — bulk (optionally multi-threaded) column encryption and the
//!   worker-side aggregation loop.

#![warn(missing_docs)]

pub mod batch;
pub mod idset;
pub mod scheme;

pub use batch::{
    aggregate_where, decrypt_column, encrypt_column, encrypt_column_parallel, encrypt_column_scalar, EncryptedColumn,
};
pub use idset::IdSet;
pub use scheme::{AsheCiphertext, AsheScheme};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use seabed_crypto::prf::PrfKind;

    proptest! {
        #[test]
        fn roundtrip_any_value_any_id(key in any::<[u8; 16]>(), m in any::<u64>(), id in any::<u64>()) {
            let s = AsheScheme::new(&key);
            prop_assert_eq!(s.decrypt(&s.encrypt(m, id)), m);
        }

        #[test]
        fn homomorphic_sum_matches_plain_sum(
            key in any::<[u8; 16]>(),
            values in proptest::collection::vec(any::<u64>(), 1..200),
            start_id in 0u64..1_000_000,
        ) {
            let s = AsheScheme::new(&key);
            let cts: Vec<AsheCiphertext> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| s.encrypt(v, start_id + i as u64))
                .collect();
            let sum = s.sum(&cts);
            let expected = values.iter().fold(0u64, |a, &b| a.wrapping_add(b));
            prop_assert_eq!(s.decrypt(&sum), expected);
            // Consecutive IDs collapse to one run -> constant decryption cost.
            prop_assert_eq!(sum.ids.run_count(), 1);
        }

        #[test]
        fn scattered_sum_matches_plain_sum(
            key in any::<[u8; 16]>(),
            rows in proptest::collection::btree_map(0u64..10_000, any::<u32>(), 1..100),
        ) {
            let s = AsheScheme::new(&key);
            let sum = s.sum(
                rows.iter()
                    .map(|(&id, &v)| s.encrypt(v as u64, id))
                    .collect::<Vec<_>>()
                    .iter(),
            );
            let expected: u64 = rows.values().map(|&v| v as u64).sum();
            prop_assert_eq!(s.decrypt(&sum), expected);
            prop_assert_eq!(sum.row_count(), rows.len() as u64);
        }

        #[test]
        fn addition_is_commutative_and_associative(
            key in any::<[u8; 16]>(),
            a in any::<u64>(), b in any::<u64>(), c in any::<u64>(),
        ) {
            let s = AsheScheme::new(&key);
            let (ca, cb, cc) = (s.encrypt(a, 1), s.encrypt(b, 2), s.encrypt(c, 3));
            let left = s.add(&s.add(&ca, &cb), &cc);
            let right = s.add(&ca, &s.add(&cb, &cc));
            prop_assert_eq!(s.decrypt(&left), s.decrypt(&right));
            let ab = s.add(&ca, &cb);
            let ba = s.add(&cb, &ca);
            prop_assert_eq!(s.decrypt(&ab), s.decrypt(&ba));
        }

        #[test]
        fn modular_group_roundtrip(
            key in any::<[u8; 16]>(),
            modulus in 2u64..1_000_000_000,
            values in proptest::collection::vec(any::<u64>(), 1..50),
        ) {
            let s = AsheScheme::with_options(&key, PrfKind::Aes, modulus);
            let cts: Vec<AsheCiphertext> = values.iter().enumerate().map(|(i, &v)| s.encrypt(v, i as u64)).collect();
            let sum = s.sum(&cts);
            let expected = values.iter().fold(0u128, |a, &b| (a + (b % modulus) as u128) % modulus as u128) as u64;
            prop_assert_eq!(s.decrypt(&sum), expected);
        }

        #[test]
        fn idset_union_preserves_count(
            a in proptest::collection::btree_set(0u64..10_000, 0..200),
            b in proptest::collection::btree_set(10_000u64..20_000, 0..200),
        ) {
            let sa = IdSet::from_sorted_ids(&a.iter().copied().collect::<Vec<_>>());
            let sb = IdSet::from_sorted_ids(&b.iter().copied().collect::<Vec<_>>());
            let u = sa.union(&sb);
            prop_assert_eq!(u.count(), (a.len() + b.len()) as u64);
            for id in a.iter().chain(b.iter()) {
                prop_assert!(u.contains(*id));
            }
        }

        #[test]
        fn idset_encode_roundtrip_under_all_encodings(
            ids in proptest::collection::btree_set(0u64..50_000, 0..300),
        ) {
            let set = IdSet::from_sorted_ids(&ids.iter().copied().collect::<Vec<_>>());
            for enc in seabed_encoding::IdListEncoding::ALL {
                let data = set.encode(enc);
                let back = IdSet::decode(&data, enc).unwrap();
                prop_assert_eq!(&back, &set, "encoding {:?}", enc);
            }
        }

        #[test]
        fn telescoped_equals_naive_decryption(
            key in any::<[u8; 16]>(),
            ids in proptest::collection::btree_set(0u64..2_000, 1..100),
        ) {
            let s = AsheScheme::new(&key);
            let sum = s.sum(
                ids.iter().map(|&id| s.encrypt(id * 7, id)).collect::<Vec<_>>().iter(),
            );
            prop_assert_eq!(s.decrypt(&sum), s.decrypt_without_telescoping(&sum));
        }
    }
}
