//! Sets of row identifiers attached to ASHE ciphertexts.
//!
//! Every homomorphic addition in ASHE unions the identifier multisets of its
//! operands (§3.1). Seabed keeps each set as a list of maximal runs, which is
//! what makes the scheme practical: when the aggregated rows are contiguous,
//! the whole set collapses to a single run and decryption costs two PRF
//! evaluations regardless of how many rows were summed (§3.2).
//!
//! Identifier *multisets* degenerate to sets in Seabed because the planner
//! assigns every row a unique identifier and a query folds each row at most
//! once; [`IdSet::union`] is nonetheless a *total* set union — overlapping
//! operands (possible only with forged or duplicated partial results from an
//! untrusted worker) coalesce canonically instead of panicking the merge.

use seabed_encoding::{decode_runs, encode_runs, ids_to_runs, IdListEncoding, Run};

/// A set of row identifiers stored as sorted, non-overlapping, maximal runs.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IdSet {
    runs: Vec<Run>,
}

impl IdSet {
    /// The empty set.
    pub fn new() -> IdSet {
        IdSet::default()
    }

    /// A set holding a single identifier.
    pub fn single(id: u64) -> IdSet {
        IdSet {
            runs: vec![Run::new(id, id)],
        }
    }

    /// A set holding the contiguous range `[start, end]` (inclusive).
    pub fn range(start: u64, end: u64) -> IdSet {
        IdSet {
            runs: vec![Run::new(start, end)],
        }
    }

    /// Builds a set from a sorted list of identifiers (duplicates are ignored).
    pub fn from_sorted_ids(ids: &[u64]) -> IdSet {
        IdSet { runs: ids_to_runs(ids) }
    }

    /// Builds a set from pre-computed runs (must be sorted, non-overlapping,
    /// maximal — checked in debug builds).
    pub fn from_runs(runs: Vec<Run>) -> IdSet {
        debug_assert!(
            runs.windows(2).all(|w| w[0].end + 1 < w[1].start),
            "runs must be sorted, disjoint and non-adjacent"
        );
        IdSet { runs }
    }

    /// The runs of this set.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Number of identifiers in the set.
    pub fn count(&self) -> u64 {
        self.runs.iter().map(|r| r.len()).sum()
    }

    /// Number of runs; this — not [`IdSet::count`] — is what decryption cost
    /// scales with.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// True if the set holds no identifiers.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// True if `id` is a member.
    pub fn contains(&self, id: u64) -> bool {
        self.runs
            .binary_search_by(|r| {
                if id < r.start {
                    std::cmp::Ordering::Greater
                } else if id > r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Appends an identifier that is strictly greater than every current
    /// member — the common case when a worker scans its partition in order.
    pub fn push_ordered(&mut self, id: u64) {
        match self.runs.last_mut() {
            Some(run) if id == run.end + 1 => run.end = id,
            Some(run) => {
                assert!(
                    id > run.end,
                    "push_ordered requires increasing ids (got {id} after {})",
                    run.end
                );
                self.runs.push(Run::new(id, id));
            }
            None => self.runs.push(Run::new(id, id)),
        }
    }

    /// Unions two sets, keeping the result in canonical maximal-run form.
    ///
    /// In the query pipeline the operands are always disjoint (the ⊕ of two
    /// ciphertexts that each cover different rows), but the operation is
    /// total: overlapping or adjacent runs coalesce instead of panicking or
    /// producing a non-canonical set, so a forged or duplicated partial
    /// result gathered from an untrusted worker can never take down the
    /// merging side.
    pub fn union(&self, other: &IdSet) -> IdSet {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut merged: Vec<Run> = Vec::with_capacity(self.runs.len() + other.runs.len());
        let (mut i, mut j) = (0usize, 0usize);
        let push = |run: Run, merged: &mut Vec<Run>| match merged.last_mut() {
            // Overlapping or adjacent (watch the u64::MAX edge): coalesce.
            Some(last) if run.start <= last.end.saturating_add(1) => {
                last.end = last.end.max(run.end);
            }
            _ => merged.push(run),
        };
        while i < self.runs.len() && j < other.runs.len() {
            if self.runs[i].start <= other.runs[j].start {
                push(self.runs[i], &mut merged);
                i += 1;
            } else {
                push(other.runs[j], &mut merged);
                j += 1;
            }
        }
        for &run in &self.runs[i..] {
            push(run, &mut merged);
        }
        for &run in &other.runs[j..] {
            push(run, &mut merged);
        }
        IdSet { runs: merged }
    }

    /// Iterates over every identifier (use sparingly; the whole point of runs
    /// is to avoid materialising these).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|r| r.start..=r.end)
    }

    /// The PRF boundary pairs needed for decryption: for each run `[a, b]`,
    /// decryption adds `F(b) - F(a-1)` (identifiers saturate at 0 - 1 =
    /// `u64::MAX`, which the PRF treats as the "before the first row" marker).
    pub fn boundary_pairs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.runs.iter().map(|r| (r.end, r.start.wrapping_sub(1)))
    }

    /// Serializes the set with the given encoding.
    pub fn encode(&self, encoding: IdListEncoding) -> Vec<u8> {
        encode_runs(&self.runs, encoding)
    }

    /// Deserializes a set; `None` on malformed input.
    pub fn decode(data: &[u8], encoding: IdListEncoding) -> Option<IdSet> {
        Some(IdSet {
            runs: decode_runs(data, encoding)?,
        })
    }

    /// Size of the serialized representation, in bytes.
    pub fn encoded_size(&self, encoding: IdListEncoding) -> usize {
        self.encode(encoding).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_count() {
        assert_eq!(IdSet::new().count(), 0);
        assert_eq!(IdSet::single(7).count(), 1);
        assert_eq!(IdSet::range(10, 19).count(), 10);
        assert_eq!(IdSet::from_sorted_ids(&[1, 2, 3, 7, 8]).run_count(), 2);
    }

    #[test]
    fn contains_checks_membership() {
        let s = IdSet::from_sorted_ids(&[1, 2, 3, 10, 20, 21]);
        for id in [1, 2, 3, 10, 20, 21] {
            assert!(s.contains(id));
        }
        for id in [0, 4, 9, 11, 19, 22, 1000] {
            assert!(!s.contains(id));
        }
    }

    #[test]
    fn push_ordered_extends_runs() {
        let mut s = IdSet::new();
        for id in [5u64, 6, 7, 10, 11, 100] {
            s.push_ordered(id);
        }
        assert_eq!(s.runs(), &[Run::new(5, 7), Run::new(10, 11), Run::new(100, 100)]);
    }

    #[test]
    #[should_panic]
    fn push_ordered_rejects_out_of_order() {
        let mut s = IdSet::single(10);
        s.push_ordered(3);
    }

    #[test]
    fn union_of_disjoint_sets() {
        let a = IdSet::from_sorted_ids(&[1, 2, 3, 100]);
        let b = IdSet::from_sorted_ids(&[4, 5, 50]);
        let u = a.union(&b);
        assert_eq!(u.runs(), &[Run::new(1, 5), Run::new(50, 50), Run::new(100, 100)]);
        assert_eq!(u.count(), 7);
        // union with the empty set is the identity
        assert_eq!(a.union(&IdSet::new()), a);
        assert_eq!(IdSet::new().union(&a), a);
    }

    #[test]
    fn union_merges_adjacent_runs_from_partitions() {
        // Two workers covering adjacent row ranges produce one run when merged
        // at the driver — the key property that keeps ID lists constant-size
        // for full scans.
        let a = IdSet::range(0, 499);
        let b = IdSet::range(500, 999);
        let u = a.union(&b);
        assert_eq!(u.run_count(), 1);
        assert_eq!(u.count(), 1000);
    }

    #[test]
    fn union_is_total_over_overlapping_operands() {
        // Overlap never arises from honest disjoint partitions, but a forged
        // or duplicated partial gathered from an untrusted worker can ship
        // one; the union must stay canonical (sorted maximal runs, each id
        // counted once) instead of panicking or double-counting.
        let a = IdSet::from_runs(vec![Run::new(1, 5), Run::new(10, 12)]);
        let b = IdSet::from_runs(vec![Run::new(4, 10), Run::new(20, 20)]);
        let u = a.union(&b);
        assert_eq!(u.runs(), &[Run::new(1, 12), Run::new(20, 20)]);
        assert_eq!(u.count(), 13);
        // Identical operands are idempotent, and the u64::MAX edge is safe.
        assert_eq!(a.union(&a), a);
        let top = IdSet::range(u64::MAX - 1, u64::MAX);
        assert_eq!(top.union(&top), top);
    }

    #[test]
    fn boundary_pairs_telescoping() {
        let s = IdSet::from_runs(vec![Run::new(3, 9), Run::new(20, 25)]);
        let pairs: Vec<(u64, u64)> = s.boundary_pairs().collect();
        assert_eq!(pairs, vec![(9, 2), (25, 19)]);
        // id 0 wraps to u64::MAX as "before the table" marker
        let z = IdSet::range(0, 5);
        assert_eq!(z.boundary_pairs().next().unwrap(), (5, u64::MAX));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = IdSet::from_sorted_ids(&(0..1000u64).filter(|i| i % 3 != 0).collect::<Vec<_>>());
        for enc in IdListEncoding::ALL {
            let data = s.encode(enc);
            assert_eq!(IdSet::decode(&data, enc).unwrap(), s, "{enc:?}");
        }
    }

    #[test]
    fn iter_yields_all_ids_in_order() {
        let ids = vec![2u64, 3, 4, 9, 23];
        let s = IdSet::from_sorted_ids(&ids);
        assert_eq!(s.iter().collect::<Vec<_>>(), ids);
    }
}
