//! Cluster execution model: real parallel execution plus a simulated-cluster
//! cost model.
//!
//! The paper runs Seabed on an Azure HDInsight cluster and sweeps the number
//! of cores from 10 to 100 (Figure 7). This environment does not have 100
//! cores, so the engine separates *doing the work* from *costing the work*:
//!
//! * every partition task is actually executed, on a local thread pool, and
//!   its CPU time is measured;
//! * the *simulated* server-side latency is then computed by list-scheduling
//!   the measured task durations onto `workers` parallel slots, adding the
//!   per-task scheduling overhead and (optionally) garbage-collection-style
//!   stragglers the paper describes in §6.2.
//!
//! This reproduces the shapes of Figures 6, 7 and 9 — linear growth with data
//! size, saturation once per-task overhead dominates, straggler sensitivity —
//! while remaining faithful to the real per-row computation costs, which are
//! measured rather than modeled.

use crate::exec::{merge_operator_profiles, ExecMode, OperatorProfile};
use crate::table::{Partition, Table};
use rand::{Rng, SeedableRng};
use seabed_error::SeabedError;
use std::time::{Duration, Instant};

/// Configuration of the (simulated) cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of simulated worker cores (the x-axis of Figure 7).
    pub workers: usize,
    /// Number of OS threads used to actually execute tasks.
    pub local_threads: usize,
    /// Fixed per-task scheduling/launch overhead (Spark task creation cost;
    /// this is what makes NoEnc latency flat at ~0.6 s in Figure 6).
    pub task_overhead: Duration,
    /// Probability that a task becomes a straggler (§6.2 attributes these to
    /// garbage collection).
    pub straggler_probability: f64,
    /// Multiplicative slowdown applied to straggler tasks.
    pub straggler_factor: f64,
    /// Seed of the straggler RNG. The cost model draws its straggler
    /// decisions from a generator seeded with this value (fresh per query),
    /// so simulated cluster results — and the bench JSON derived from them —
    /// are reproducible across runs instead of depending on an ambient
    /// thread-local RNG.
    pub straggler_seed: u64,
    /// How partition scans are executed (scalar reference path or vectorized
    /// fast path). Defaults to [`ExecMode::Vectorized`].
    pub exec_mode: ExecMode,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 100,
            local_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            task_overhead: Duration::from_millis(5),
            straggler_probability: 0.0,
            straggler_factor: 4.0,
            straggler_seed: 0x5eabed,
            exec_mode: ExecMode::default(),
        }
    }
}

impl ClusterConfig {
    /// A convenience constructor fixing the simulated worker count.
    pub fn with_workers(workers: usize) -> ClusterConfig {
        ClusterConfig {
            workers,
            ..ClusterConfig::default()
        }
    }

    /// Returns the configuration with the execution mode replaced.
    pub fn exec_mode(mut self, mode: ExecMode) -> ClusterConfig {
        self.exec_mode = mode;
        self
    }

    /// Returns the configuration with the straggler RNG seed replaced.
    pub fn straggler_seed(mut self, seed: u64) -> ClusterConfig {
        self.straggler_seed = seed;
        self
    }

    /// Returns the configuration with the local thread count replaced.
    pub fn local_threads(mut self, threads: usize) -> ClusterConfig {
        self.local_threads = threads;
        self
    }

    /// Checks the configuration for degenerate values that would make the
    /// execution or cost model meaningless: zero simulated workers, zero
    /// local threads, or non-finite straggler parameters. Rejected with a
    /// typed [`SeabedError`] here — at construction via [`Cluster::try_new`]
    /// and again at the top of query execution — instead of being silently
    /// clamped somewhere down the execution path.
    pub fn validate(&self) -> Result<(), SeabedError> {
        if self.workers == 0 {
            return Err(SeabedError::engine(
                "cluster config is degenerate: workers must be at least 1",
            ));
        }
        if self.local_threads == 0 {
            return Err(SeabedError::engine(
                "cluster config is degenerate: local_threads must be at least 1",
            ));
        }
        if !self.straggler_probability.is_finite() || !(0.0..=1.0).contains(&self.straggler_probability) {
            return Err(SeabedError::engine(format!(
                "cluster config is degenerate: straggler_probability {} is not a probability",
                self.straggler_probability
            )));
        }
        if !self.straggler_factor.is_finite() || self.straggler_factor < 1.0 {
            return Err(SeabedError::engine(format!(
                "cluster config is degenerate: straggler_factor {} must be a finite slowdown >= 1",
                self.straggler_factor
            )));
        }
        Ok(())
    }
}

/// Statistics of one distributed stage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of tasks (= partitions) executed.
    pub tasks: usize,
    /// Total CPU time across all tasks.
    pub total_task_time: Duration,
    /// Longest single task.
    pub max_task_time: Duration,
    /// Simulated makespan on `workers` slots including per-task overhead and
    /// stragglers: the "server-side latency" of Figures 6–9.
    pub simulated_server_time: Duration,
    /// Bytes the tasks reported shipping to the driver (partial results /
    /// shuffle output).
    pub bytes_to_driver: usize,
    /// Wall-clock time the real execution took on the local thread pool.
    pub wall_time: Duration,
    /// Per-operator execution breakdown, in plan order. Empty on plain
    /// (un-analyzed) executions; populated by `EXPLAIN ANALYZE` via the
    /// [`crate::exec::ProfileSink`] threaded through the scan.
    pub operators: Vec<OperatorProfile>,
}

impl ExecStats {
    /// Merges statistics from a second stage run as part of the same query
    /// (e.g. a map stage followed by a reduce stage).
    ///
    /// Every field is combined additively except `max_task_time`, which
    /// takes the maximum — **including `wall_time`**: the merge models
    /// stages (and shards) run *sequentially* on one driver, so the merged
    /// wall time is the sum of the parts, not their overlap. Callers that
    /// ran the parts concurrently (the distributed coordinator's scatter)
    /// must overwrite `wall_time` with their own end-to-end measurement
    /// after folding, which is exactly what `DistCoordinator` does.
    ///
    /// Per-operator profiles merge shard-wise via
    /// [`merge_operator_profiles`]: matching operator sequences sum
    /// element-wise, an empty side passes the other through, and mismatched
    /// shapes concatenate.
    pub fn merge(&self, other: &ExecStats) -> ExecStats {
        ExecStats {
            tasks: self.tasks + other.tasks,
            total_task_time: self.total_task_time + other.total_task_time,
            max_task_time: self.max_task_time.max(other.max_task_time),
            simulated_server_time: self.simulated_server_time + other.simulated_server_time,
            bytes_to_driver: self.bytes_to_driver + other.bytes_to_driver,
            wall_time: self.wall_time + other.wall_time,
            operators: merge_operator_profiles(&self.operators, &other.operators),
        }
    }
}

/// The output of one partition task: a value plus the number of bytes the
/// task would ship to the driver.
pub struct TaskOutput<R> {
    /// The task's partial result.
    pub value: R,
    /// Serialized size of the partial result in bytes.
    pub bytes: usize,
}

impl<R> TaskOutput<R> {
    /// Creates a task output with an explicit byte size.
    pub fn new(value: R, bytes: usize) -> Self {
        TaskOutput { value, bytes }
    }
}

/// A simulated cluster that executes partition tasks.
#[derive(Clone, Debug, Default)]
pub struct Cluster {
    /// The cluster configuration.
    pub config: ClusterConfig,
}

impl Cluster {
    /// Creates a cluster with the given configuration.
    ///
    /// The configuration is *not* validated here (this constructor predates
    /// [`ClusterConfig::validate`] and is used pervasively with literal
    /// configurations); query execution validates it before any scan starts.
    /// Prefer [`Cluster::try_new`] when the configuration comes from outside.
    pub fn new(config: ClusterConfig) -> Cluster {
        Cluster { config }
    }

    /// Creates a cluster, rejecting degenerate configurations — zero workers
    /// or zero local threads — with a typed [`SeabedError`] at construction.
    pub fn try_new(config: ClusterConfig) -> Result<Cluster, SeabedError> {
        config.validate()?;
        Ok(Cluster { config })
    }

    /// Runs `task` once per partition of `table`, in parallel on the local
    /// thread pool, and returns the partial results in partition order along
    /// with execution statistics.
    pub fn run<R, F>(&self, table: &Table, task: F) -> (Vec<R>, ExecStats)
    where
        R: Send,
        F: Fn(&Partition) -> TaskOutput<R> + Sync,
    {
        let started = Instant::now();
        let n = table.partitions.len();
        let mut results: Vec<Option<(R, usize, Duration)>> = (0..n).map(|_| None).collect();
        let threads = self.config.local_threads.max(1).min(n.max(1));
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results_cells: Vec<std::sync::Mutex<Option<(R, usize, Duration)>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let t0 = Instant::now();
                    let out = task(&table.partitions[idx]);
                    let elapsed = t0.elapsed();
                    // Each cell is written exactly once by the thread that
                    // claimed its index, so the lock never contends; poisoning
                    // is recovered because the data is the write itself.
                    *results_cells[idx].lock().unwrap_or_else(|p| p.into_inner()) =
                        Some((out.value, out.bytes, elapsed));
                });
            }
        });
        for (slot, cell) in results.iter_mut().zip(results_cells) {
            *slot = cell.into_inner().unwrap_or_else(|p| p.into_inner());
        }
        let wall_time = started.elapsed();

        let mut task_times = Vec::with_capacity(n);
        let mut outputs = Vec::with_capacity(n);
        let mut bytes_to_driver = 0usize;
        for slot in results {
            let (value, bytes, elapsed) = slot.expect("task did not run");
            task_times.push(elapsed);
            bytes_to_driver += bytes;
            outputs.push(value);
        }
        let stats = self.simulate(&task_times, bytes_to_driver, wall_time);
        (outputs, stats)
    }

    /// Computes the simulated makespan for a set of measured task durations:
    /// the cost model behind [`Cluster::run`], exposed so the straggler model
    /// can be exercised (and pinned) with fixed task times.
    ///
    /// Deterministic: straggler decisions are drawn from a generator seeded
    /// with [`ClusterConfig::straggler_seed`], freshly per call, so the same
    /// config and task times always produce the same `simulated_server_time`.
    pub fn simulate(&self, task_times: &[Duration], bytes_to_driver: usize, wall_time: Duration) -> ExecStats {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.straggler_seed);
        let workers = self.config.workers.max(1);
        // Worker slots as accumulated busy time; tasks are list-scheduled in
        // submission order, which is how Spark assigns partitions to executors.
        let mut slots = vec![Duration::ZERO; workers];
        let mut total = Duration::ZERO;
        let mut max_task = Duration::ZERO;
        for &t in task_times {
            let mut effective = t + self.config.task_overhead;
            if self.config.straggler_probability > 0.0 && rng.random::<f64>() < self.config.straggler_probability {
                effective = Duration::from_secs_f64(effective.as_secs_f64() * self.config.straggler_factor);
            }
            total += t;
            max_task = max_task.max(t);
            // Assign to the least-loaded slot.
            let slot = slots.iter_mut().min_by_key(|d| **d).expect("at least one worker");
            *slot += effective;
        }
        let makespan = slots.into_iter().max().unwrap_or(Duration::ZERO);
        ExecStats {
            tasks: task_times.len(),
            total_task_time: total,
            max_task_time: max_task,
            simulated_server_time: makespan,
            bytes_to_driver,
            wall_time,
            operators: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnData, ColumnType, Schema, Table};

    fn table(rows: usize, partitions: usize) -> Table {
        let schema = Schema::new([("v".to_string(), ColumnType::UInt64)]);
        Table::from_columns(schema, vec![ColumnData::UInt64((0..rows as u64).collect())], partitions)
    }

    #[test]
    fn run_returns_results_in_partition_order() {
        let t = table(1000, 8);
        let cluster = Cluster::default();
        let (results, stats) = cluster.run(&t, |p| {
            let sum: u64 = p.column(0).as_u64().iter().sum();
            TaskOutput::new((p.start_row, sum), 8)
        });
        assert_eq!(results.len(), 8);
        assert!(results.windows(2).all(|w| w[0].0 < w[1].0), "partition order preserved");
        let total: u64 = results.iter().map(|(_, s)| s).sum();
        assert_eq!(total, (0..1000u64).sum());
        assert_eq!(stats.tasks, 8);
        assert_eq!(stats.bytes_to_driver, 64);
    }

    #[test]
    fn simulated_time_includes_task_overhead() {
        let t = table(100, 10);
        let mut config = ClusterConfig::with_workers(1);
        config.task_overhead = Duration::from_millis(50);
        let cluster = Cluster::new(config);
        let (_, stats) = cluster.run(&t, |_| TaskOutput::new((), 0));
        // 10 tasks on 1 worker, each with 50 ms overhead -> at least 500 ms.
        assert!(stats.simulated_server_time >= Duration::from_millis(500));
    }

    #[test]
    fn more_workers_reduce_simulated_time() {
        let t = table(200_000, 64);
        let run_with = |workers: usize| {
            let mut config = ClusterConfig::with_workers(workers);
            config.task_overhead = Duration::from_millis(2);
            let cluster = Cluster::new(config);
            let (_, stats) = cluster.run(&t, |p| {
                // Do genuine work so task durations are non-trivial.
                let mut acc = 0u64;
                for &v in p.column(0).as_u64() {
                    acc = acc.wrapping_add(v.wrapping_mul(2654435761));
                }
                TaskOutput::new(acc, 8)
            });
            stats.simulated_server_time
        };
        let slow = run_with(2);
        let fast = run_with(32);
        assert!(fast < slow, "32 workers ({fast:?}) should beat 2 workers ({slow:?})");
    }

    #[test]
    fn stragglers_inflate_makespan() {
        let t = table(1000, 20);
        let base = {
            let mut c = ClusterConfig::with_workers(20);
            c.task_overhead = Duration::from_millis(10);
            c.straggler_probability = 0.0;
            Cluster::new(c)
        };
        let strag = {
            let mut c = ClusterConfig::with_workers(20);
            c.task_overhead = Duration::from_millis(10);
            c.straggler_probability = 1.0;
            c.straggler_factor = 5.0;
            Cluster::new(c)
        };
        let (_, s1) = base.run(&t, |_| TaskOutput::new((), 0));
        let (_, s2) = strag.run(&t, |_| TaskOutput::new((), 0));
        assert!(s2.simulated_server_time > s1.simulated_server_time);
    }

    /// Regression test for the ambient-RNG cost model: with a fixed
    /// `straggler_seed`, two simulations of the same task times must produce
    /// identical `simulated_server_time` (previously every query drew from a
    /// fresh `rand::rng()`, so straggler placement — and thus bench JSON —
    /// changed between runs).
    #[test]
    fn straggler_simulation_is_deterministic_per_seed() {
        let task_times: Vec<Duration> = (1..=40u64).map(Duration::from_millis).collect();
        let cluster_with_seed = |seed: u64| {
            let mut c = ClusterConfig::with_workers(8).straggler_seed(seed);
            c.task_overhead = Duration::from_millis(3);
            c.straggler_probability = 0.3;
            c.straggler_factor = 6.0;
            Cluster::new(c)
        };
        let a = cluster_with_seed(42).simulate(&task_times, 0, Duration::ZERO);
        let b = cluster_with_seed(42).simulate(&task_times, 0, Duration::ZERO);
        assert_eq!(a.simulated_server_time, b.simulated_server_time);
        assert_eq!(a, b);
        // Different seeds place stragglers differently (with 40 tasks at 30%
        // probability, a collision of every placement is astronomically
        // unlikely for this seed pair — pinned here so the seed is known-live).
        let c = cluster_with_seed(43).simulate(&task_times, 0, Duration::ZERO);
        assert_ne!(a.simulated_server_time, c.simulated_server_time);
    }

    #[test]
    fn stats_merge_adds_up() {
        let op = |rows_in: u64| OperatorProfile {
            label: "filter:plain:v".to_string(),
            rows_in,
            rows_out: rows_in / 2,
            batches: 1,
            nanos: 5,
        };
        let a = ExecStats {
            tasks: 2,
            total_task_time: Duration::from_millis(10),
            max_task_time: Duration::from_millis(7),
            simulated_server_time: Duration::from_millis(12),
            bytes_to_driver: 100,
            wall_time: Duration::from_millis(9),
            operators: vec![op(100)],
        };
        let b = ExecStats {
            tasks: 3,
            total_task_time: Duration::from_millis(20),
            max_task_time: Duration::from_millis(9),
            simulated_server_time: Duration::from_millis(15),
            bytes_to_driver: 50,
            wall_time: Duration::from_millis(14),
            operators: vec![op(60)],
        };
        let m = a.merge(&b);
        assert_eq!(m.tasks, 5);
        assert_eq!(m.total_task_time, Duration::from_millis(30));
        assert_eq!(m.max_task_time, Duration::from_millis(9));
        assert_eq!(m.simulated_server_time, Duration::from_millis(27));
        assert_eq!(m.bytes_to_driver, 150);
        // Documented additive semantics: merge models sequential stages, so
        // wall times sum (concurrent callers overwrite the field afterward).
        assert_eq!(m.wall_time, Duration::from_millis(23));
        // Matching operator sequences merge element-wise (shard-wise sums).
        assert_eq!(m.operators.len(), 1);
        assert_eq!(m.operators[0].rows_in, 160);
        assert_eq!(m.operators[0].rows_out, 80);
        assert_eq!(m.operators[0].batches, 2);
        assert_eq!(m.operators[0].nanos, 10);
    }

    /// Regression tests for degenerate configurations: `with_workers(0)` and
    /// `local_threads(0)` used to flow into the execution path unchecked
    /// (silently clamped deep inside `run`/`simulate`); they are now rejected
    /// with a typed error at construction via `try_new` and by
    /// `ClusterConfig::validate` on the execution path.
    #[test]
    fn degenerate_configs_are_rejected_with_typed_errors() {
        let zero_workers = ClusterConfig::with_workers(0);
        assert!(matches!(zero_workers.validate(), Err(SeabedError::Engine(_))));
        assert!(matches!(Cluster::try_new(zero_workers), Err(SeabedError::Engine(_))));

        let zero_threads = ClusterConfig::with_workers(4).local_threads(0);
        assert!(matches!(zero_threads.validate(), Err(SeabedError::Engine(_))));
        assert!(matches!(Cluster::try_new(zero_threads), Err(SeabedError::Engine(_))));

        let mut bad_probability = ClusterConfig::with_workers(4);
        bad_probability.straggler_probability = 1.5;
        assert!(matches!(bad_probability.validate(), Err(SeabedError::Engine(_))));

        let mut bad_factor = ClusterConfig::with_workers(4);
        bad_factor.straggler_factor = f64::NAN;
        assert!(matches!(Cluster::try_new(bad_factor), Err(SeabedError::Engine(_))));

        // Well-formed configurations pass and construct.
        let good = ClusterConfig::with_workers(4).local_threads(2);
        assert!(good.validate().is_ok());
        assert!(Cluster::try_new(good).is_ok());
    }

    #[test]
    fn empty_table_runs_single_empty_task() {
        let t = table(0, 4);
        let cluster = Cluster::default();
        let (results, stats) = cluster.run(&t, |p| TaskOutput::new(p.num_rows(), 0));
        assert_eq!(results, vec![0]);
        assert_eq!(stats.tasks, 1);
    }
}
