//! Storage accounting and a simple binary serialization of tables.
//!
//! Table 5 of the paper reports, for every dataset, the on-disk and in-memory
//! footprint of the plaintext (NoEnc), Seabed and Paillier representations.
//! The serialized form here plays the role of the Protobuf-in-HDFS files of
//! the prototype (disk size); the in-memory size is estimated from the actual
//! heap layout of the columnar representation, which carries per-`Vec`
//! overheads the way Spark's JVM objects do (at a smaller constant).

use crate::table::{ColumnData, Partition, Table};

/// Serialized (on-disk) size of a column, in bytes: a varint-free flat layout
/// of fixed-width values and length-prefixed variable-width values.
pub fn column_disk_size(column: &ColumnData) -> usize {
    match column {
        ColumnData::UInt64(v) => v.len() * 8,
        ColumnData::Int64(v) => v.len() * 8,
        ColumnData::Utf8(v) => v.iter().map(|s| 4 + s.len()).sum(),
        ColumnData::Bytes(v) => v.iter().map(|b| 4 + b.len()).sum(),
    }
}

/// In-memory (heap) size of a column, in bytes, including per-element
/// allocation overhead for variable-width types.
pub fn column_memory_size(column: &ColumnData) -> usize {
    const VEC_OVERHEAD: usize = 24;
    match column {
        ColumnData::UInt64(v) => VEC_OVERHEAD + v.capacity() * 8,
        ColumnData::Int64(v) => VEC_OVERHEAD + v.capacity() * 8,
        ColumnData::Utf8(v) => {
            VEC_OVERHEAD + v.capacity() * std::mem::size_of::<String>() + v.iter().map(|s| s.capacity()).sum::<usize>()
        }
        ColumnData::Bytes(v) => {
            VEC_OVERHEAD + v.capacity() * std::mem::size_of::<Vec<u8>>() + v.iter().map(|b| b.capacity()).sum::<usize>()
        }
    }
}

/// Disk footprint of a partition.
pub fn partition_disk_size(partition: &Partition) -> usize {
    partition.columns.iter().map(column_disk_size).sum()
}

/// Disk footprint of a table.
pub fn table_disk_size(table: &Table) -> usize {
    table.partitions.iter().map(partition_disk_size).sum()
}

/// In-memory footprint of a table.
pub fn table_memory_size(table: &Table) -> usize {
    table
        .partitions
        .iter()
        .map(|p| p.columns.iter().map(column_memory_size).sum::<usize>())
        .sum()
}

/// Serializes a table into a flat byte buffer (schema + per-partition column
/// data). The format is only consumed by [`deserialize_table`]; it stands in
/// for the Protobuf/HDFS layer of the prototype.
pub fn serialize_table(table: &Table) -> Vec<u8> {
    let mut out = Vec::with_capacity(table_disk_size(table) + 256);
    write_u32(&mut out, table.schema.fields.len() as u32);
    for field in &table.schema.fields {
        write_str(&mut out, &field.name);
        out.push(match field.ty {
            crate::table::ColumnType::UInt64 => 0,
            crate::table::ColumnType::Int64 => 1,
            crate::table::ColumnType::Utf8 => 2,
            crate::table::ColumnType::Bytes => 3,
        });
    }
    write_u32(&mut out, table.partitions.len() as u32);
    for partition in &table.partitions {
        write_u64(&mut out, partition.start_row);
        for column in &partition.columns {
            match column {
                ColumnData::UInt64(v) => {
                    write_u32(&mut out, v.len() as u32);
                    for &x in v {
                        write_u64(&mut out, x);
                    }
                }
                ColumnData::Int64(v) => {
                    write_u32(&mut out, v.len() as u32);
                    for &x in v {
                        write_u64(&mut out, x as u64);
                    }
                }
                ColumnData::Utf8(v) => {
                    write_u32(&mut out, v.len() as u32);
                    for s in v {
                        write_str(&mut out, s);
                    }
                }
                ColumnData::Bytes(v) => {
                    write_u32(&mut out, v.len() as u32);
                    for b in v {
                        write_u32(&mut out, b.len() as u32);
                        out.extend_from_slice(b);
                    }
                }
            }
        }
    }
    out
}

/// Caps a length prefix read from untrusted input: a forged count cannot ask
/// for more elements than the remaining bytes could possibly encode (at
/// `min_size` bytes each), so `Vec::with_capacity` on corrupt data cannot
/// balloon into a multi-gigabyte allocation before the element reads fail.
fn capped(len: usize, data: &[u8], pos: usize, min_size: usize) -> usize {
    len.min(data.len().saturating_sub(pos) / min_size.max(1))
}

/// Deserializes a table produced by [`serialize_table`]; returns `None` on
/// malformed input (truncation, forged counts, invalid type tags) — it never
/// panics or over-allocates.
pub fn deserialize_table(data: &[u8]) -> Option<Table> {
    let mut pos = 0usize;
    let n_fields = read_u32(data, &mut pos)? as usize;
    let mut fields = Vec::with_capacity(capped(n_fields, data, pos, 5));
    for _ in 0..n_fields {
        let name = read_str(data, &mut pos)?;
        let ty = match *data.get(pos)? {
            0 => crate::table::ColumnType::UInt64,
            1 => crate::table::ColumnType::Int64,
            2 => crate::table::ColumnType::Utf8,
            3 => crate::table::ColumnType::Bytes,
            _ => return None,
        };
        pos += 1;
        fields.push((name, ty));
    }
    let schema = crate::table::Schema::new(fields);
    let n_partitions = read_u32(data, &mut pos)? as usize;
    let mut partitions = Vec::with_capacity(capped(n_partitions, data, pos, 8));
    for _ in 0..n_partitions {
        let start_row = read_u64(data, &mut pos)?;
        let mut columns = Vec::with_capacity(schema.fields.len());
        for field in &schema.fields {
            let len = read_u32(data, &mut pos)? as usize;
            let column = match field.ty {
                crate::table::ColumnType::UInt64 => {
                    let mut v = Vec::with_capacity(capped(len, data, pos, 8));
                    for _ in 0..len {
                        v.push(read_u64(data, &mut pos)?);
                    }
                    ColumnData::UInt64(v)
                }
                crate::table::ColumnType::Int64 => {
                    let mut v = Vec::with_capacity(capped(len, data, pos, 8));
                    for _ in 0..len {
                        v.push(read_u64(data, &mut pos)? as i64);
                    }
                    ColumnData::Int64(v)
                }
                crate::table::ColumnType::Utf8 => {
                    let mut v = Vec::with_capacity(capped(len, data, pos, 4));
                    for _ in 0..len {
                        v.push(read_str(data, &mut pos)?);
                    }
                    ColumnData::Utf8(v)
                }
                crate::table::ColumnType::Bytes => {
                    let mut v = Vec::with_capacity(capped(len, data, pos, 4));
                    for _ in 0..len {
                        let blen = read_u32(data, &mut pos)? as usize;
                        let bytes = data.get(pos..pos + blen)?.to_vec();
                        pos += blen;
                        v.push(bytes);
                    }
                    ColumnData::Bytes(v)
                }
            };
            columns.push(column);
        }
        partitions.push(Partition { start_row, columns });
    }
    Some(Table { schema, partitions })
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn read_u32(data: &[u8], pos: &mut usize) -> Option<u32> {
    let bytes = data.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn read_u64(data: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes = data.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(bytes.try_into().unwrap()))
}

fn read_str(data: &[u8], pos: &mut usize) -> Option<String> {
    let len = read_u32(data, pos)? as usize;
    let bytes = data.get(*pos..*pos + len)?;
    *pos += len;
    String::from_utf8(bytes.to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnType, Schema};

    fn sample_table() -> Table {
        let schema = Schema::new([
            ("id".to_string(), ColumnType::UInt64),
            ("delta".to_string(), ColumnType::Int64),
            ("country".to_string(), ColumnType::Utf8),
            ("blob".to_string(), ColumnType::Bytes),
        ]);
        let rows = 500usize;
        Table::from_columns(
            schema,
            vec![
                ColumnData::UInt64((0..rows as u64).collect()),
                ColumnData::Int64((0..rows as i64).map(|i| i - 250).collect()),
                ColumnData::Utf8((0..rows).map(|i| format!("C{}", i % 7)).collect()),
                ColumnData::Bytes((0..rows).map(|i| vec![i as u8; i % 5]).collect()),
            ],
            4,
        )
    }

    #[test]
    fn serialize_roundtrip() {
        let t = sample_table();
        let data = serialize_table(&t);
        let back = deserialize_table(&data).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn malformed_data_rejected() {
        let t = sample_table();
        let data = serialize_table(&t);
        assert!(deserialize_table(&data[..data.len() / 2]).is_none());
        assert!(deserialize_table(&[]).is_none());
    }

    /// Every strict prefix of a serialized table must deserialize to `None`
    /// (all data is demanded by the leading counts, so truncation anywhere is
    /// detectable) — and must never panic.
    #[test]
    fn every_truncation_is_rejected_without_panic() {
        let schema = Schema::new([
            ("u".to_string(), ColumnType::UInt64),
            ("i".to_string(), ColumnType::Int64),
            ("s".to_string(), ColumnType::Utf8),
            ("b".to_string(), ColumnType::Bytes),
        ]);
        let t = Table::from_columns(
            schema,
            vec![
                ColumnData::UInt64(vec![1, 2, 3, 4, 5, 6]),
                ColumnData::Int64(vec![-3, -2, -1, 0, 1, 2]),
                ColumnData::Utf8((0..6).map(|i| format!("s{i}")).collect()),
                ColumnData::Bytes((0..6usize).map(|i| vec![i as u8; i]).collect()),
            ],
            3,
        );
        let data = serialize_table(&t);
        assert_eq!(deserialize_table(&data), Some(t));
        for cut in 0..data.len() {
            assert!(
                deserialize_table(&data[..cut]).is_none(),
                "prefix of {cut}/{} bytes must be rejected",
                data.len()
            );
        }
    }

    /// A forged element count far beyond the payload must fail cleanly — in
    /// particular it must not pre-allocate gigabytes before the reads fail.
    #[test]
    fn forged_huge_length_prefix_is_rejected() {
        let t = sample_table();
        let mut data = serialize_table(&t);
        // The field count is the first u32; forge it to u32::MAX.
        data[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(deserialize_table(&data).is_none());
        // Forge a huge row count for the first partition's first column: it
        // sits right after the schema block and the partition start_row.
        let mut data = serialize_table(&t);
        let schema_end = {
            let mut pos = 4usize;
            for field in &t.schema.fields {
                pos += 4 + field.name.len() + 1;
            }
            pos + 4 + 8 // partition count + start_row
        };
        data[schema_end..schema_end + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(deserialize_table(&data).is_none());
    }

    #[test]
    fn invalid_type_tag_is_rejected() {
        let t = sample_table();
        let mut data = serialize_table(&t);
        // First field: count(4) + name length prefix(4) + "id"(2) -> tag at 10.
        assert_eq!(data[10], 0, "expected the UInt64 tag for column id");
        data[10] = 9;
        assert!(deserialize_table(&data).is_none());
    }

    #[test]
    fn disk_size_matches_serialized_size_order() {
        let t = sample_table();
        let disk = table_disk_size(&t);
        let actual = serialize_table(&t).len();
        // The estimate ignores the schema header and per-partition framing, so
        // it should be close to but not larger than the actual file plus a
        // small constant.
        assert!(disk <= actual);
        assert!(actual < disk + 1024);
    }

    #[test]
    fn memory_size_exceeds_disk_size() {
        let t = sample_table();
        assert!(table_memory_size(&t) >= table_disk_size(&t));
    }

    #[test]
    fn wider_columns_cost_more() {
        let rows = 1000usize;
        let narrow = Table::from_columns(
            Schema::new([("v".to_string(), ColumnType::UInt64)]),
            vec![ColumnData::UInt64(vec![0; rows])],
            1,
        );
        let wide = Table::from_columns(
            Schema::new([("v".to_string(), ColumnType::Bytes)]),
            vec![ColumnData::Bytes(vec![vec![0u8; 256]; rows])],
            1,
        );
        // 256-byte Paillier ciphertexts cost ~32x more than 8-byte words.
        assert!(table_disk_size(&wide) > 30 * table_disk_size(&narrow));
    }
}
