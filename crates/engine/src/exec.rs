//! Vectorized execution primitives: selection vectors and batched kernels.
//!
//! # Scalar vs vectorized execution
//!
//! The engine supports two per-partition scan disciplines, selected by
//! [`ExecMode`] on the cluster configuration:
//!
//! * **Scalar** — the reference path: every filter is re-evaluated for every
//!   row, and each matching row is pushed through the aggregation state one
//!   at a time. Simple, obviously correct, and the baseline the differential
//!   test suite pins the fast path against.
//! * **Vectorized** — the fast path: filters run *column at a time* over a
//!   shrinking [`SelectionVector`], cheapest filter first, so each subsequent
//!   (more expensive) filter only touches the rows that survived the earlier
//!   ones. Aggregation is then driven off the final selection vector in
//!   batches of [`BATCH_ROWS`] rows, reading each needed column as a
//!   contiguous slice instead of through per-row dynamic accessors.
//!
//! # Selection-vector representation
//!
//! A [`SelectionVector`] is a sorted list of `u32` row offsets into one
//! partition (partitions are capped at [`MAX_PARTITION_ROWS`] rows, which a
//! horizontal partition of a sharded table never approaches). A sorted index
//! list was chosen over a bitmap because Seabed's filters are usually
//! selective and its aggregates must visit selected rows in ascending order
//! anyway — ASHE ID lists are run-length encoded, so ordered iteration keeps
//! `IdSet::push_ordered` O(1) per row. All kernels preserve the ordering
//! invariant: refinement only removes elements.
//!
//! The kernels themselves are deliberately tiny and generic over a predicate:
//! callers hoist the per-filter dispatch (which comparison operator, which
//! literal) *out* of the loop so each call monomorphizes into a tight,
//! branch-predictable scan over one column slice.

use std::time::Instant;

/// How the server executes the per-partition scan of a query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Row-at-a-time reference execution (the original Seabed scan loop).
    Scalar,
    /// Column-at-a-time execution over selection vectors (the default).
    #[default]
    Vectorized,
}

/// Rows per aggregation batch on the vectorized path. One batch of `u32`
/// offsets (4 KiB) plus the touched column stripe stays comfortably inside L1.
pub const BATCH_ROWS: usize = 1024;

/// Maximum number of rows a single partition may hold for vectorized
/// execution (`u32` row offsets).
pub const MAX_PARTITION_ROWS: usize = u32::MAX as usize;

/// A sorted set of selected row offsets within one partition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectionVector {
    rows: Vec<u32>,
}

impl SelectionVector {
    /// An empty selection.
    pub fn new() -> SelectionVector {
        SelectionVector { rows: Vec::new() }
    }

    /// Selects every row of an `n`-row partition.
    ///
    /// `n` must not exceed [`MAX_PARTITION_ROWS`]; callers validate partition
    /// sizes before building selections.
    pub fn all(n: usize) -> SelectionVector {
        debug_assert!(n <= MAX_PARTITION_ROWS);
        SelectionVector {
            rows: (0..n as u32).collect(),
        }
    }

    /// Builds a selection from sorted row offsets (test/bench helper; the
    /// ordering invariant is the caller's responsibility).
    pub fn from_sorted_rows(rows: Vec<u32>) -> SelectionVector {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "selection must be sorted");
        SelectionVector { rows }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The selected row offsets, ascending.
    pub fn rows(&self) -> &[u32] {
        &self.rows
    }

    /// The selection in batches of at most [`BATCH_ROWS`] rows, for
    /// cache-friendly aggregation loops.
    pub fn batches(&self) -> impl Iterator<Item = &[u32]> {
        self.rows.chunks(BATCH_ROWS)
    }
}

/// Measured execution profile of one plan operator (one filter kernel, one
/// aggregation pass, or one coordinator stage).
///
/// Labels are structural identifiers — a filter class plus a *physical*
/// column name (`"filter:det:dept"`), an aggregation slot (`"aggregate"`),
/// or a stage name (`"gather"`). They never carry predicate literals or SQL
/// text, so a profile can cross the redacted observability surface
/// unmodified.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OperatorProfile {
    /// Structural operator label (class + physical column, never a literal).
    pub label: String,
    /// Rows the operator looked at (partition rows for a dense select, the
    /// surviving selection for a refinement).
    pub rows_in: u64,
    /// Rows that survived the operator (selection survivors; groups for the
    /// aggregation slot).
    pub rows_out: u64,
    /// Number of batches / passes the operator ran.
    pub batches: u64,
    /// Wall-clock nanoseconds spent inside the operator.
    pub nanos: u64,
}

impl OperatorProfile {
    /// Adds another measurement of the *same* operator (another partition or
    /// shard) into this one. Counters sum; the label is kept.
    pub fn absorb(&mut self, other: &OperatorProfile) {
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.batches += other.batches;
        self.nanos += other.nanos;
    }
}

/// Merges two per-operator breakdowns shard-wise.
///
/// * one side empty → the other side, unchanged (plain executions carry no
///   profiles, so merging them is free);
/// * same operator sequence (equal length, matching labels) → element-wise
///   [`OperatorProfile::absorb`] — partitions and shards of the same plan sum
///   into one breakdown;
/// * different shapes → concatenation, so nothing measured is ever dropped
///   (heterogeneous stages keep their own entries).
pub fn merge_operator_profiles(a: &[OperatorProfile], b: &[OperatorProfile]) -> Vec<OperatorProfile> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    if a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.label == y.label) {
        return a
            .iter()
            .zip(b)
            .map(|(x, y)| {
                let mut merged = x.clone();
                merged.absorb(y);
                merged
            })
            .collect();
    }
    let mut out = a.to_vec();
    out.extend_from_slice(b);
    out
}

/// A per-operator profile collector threaded through the scan kernels.
///
/// Zero-cost when disabled: [`ProfileSink::begin`] returns `None` without
/// touching the clock, [`ProfileSink::finish`] on a `None` start is a single
/// branch, and no allocation happens until the first recorded operator. The
/// instrumented-off scan therefore executes the exact same instruction
/// sequence as an uninstrumented one, which is what keeps plain execution
/// byte-identical and inside the profiling-overhead budget.
#[derive(Debug, Default)]
pub struct ProfileSink {
    enabled: bool,
    operators: Vec<OperatorProfile>,
}

impl ProfileSink {
    /// A sink that records nothing (the plain-execution default).
    pub fn disabled() -> ProfileSink {
        ProfileSink {
            enabled: false,
            operators: Vec::new(),
        }
    }

    /// A sink that records every operator (the `EXPLAIN ANALYZE` path).
    pub fn enabled() -> ProfileSink {
        ProfileSink {
            enabled: true,
            operators: Vec::new(),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts timing one operator. `None` when disabled — the clock is never
    /// read on the plain path.
    pub fn begin(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Finishes the operator started by [`ProfileSink::begin`], recording its
    /// measurements. A `None` start (disabled sink) records nothing.
    pub fn finish(&mut self, started: Option<Instant>, label: &str, rows_in: u64, rows_out: u64, batches: u64) {
        if let Some(t0) = started {
            self.operators.push(OperatorProfile {
                label: label.to_string(),
                rows_in,
                rows_out,
                batches,
                nanos: t0.elapsed().as_nanos() as u64,
            });
        }
    }

    /// Records a fully measured operator (for stages timed externally).
    pub fn record(&mut self, profile: OperatorProfile) {
        if self.enabled {
            self.operators.push(profile);
        }
    }

    /// The recorded operators, in execution order.
    pub fn into_operators(self) -> Vec<OperatorProfile> {
        self.operators
    }
}

/// Dense first-filter kernel: selects the rows of an `n`-row partition whose
/// offset satisfies `pred`, without materialising an all-rows selection.
pub fn select_rows(n: usize, mut pred: impl FnMut(usize) -> bool) -> SelectionVector {
    debug_assert!(n <= MAX_PARTITION_ROWS);
    let mut rows = Vec::new();
    for row in 0..n {
        if pred(row) {
            rows.push(row as u32);
        }
    }
    SelectionVector { rows }
}

/// Dense first-filter kernel over a `u64` column: one tight pass, no per-row
/// accessor indirection. The predicate sees the cell value.
pub fn select_u64(col: &[u64], mut pred: impl FnMut(u64) -> bool) -> SelectionVector {
    debug_assert!(col.len() <= MAX_PARTITION_ROWS);
    let mut rows = Vec::new();
    for (row, &v) in col.iter().enumerate() {
        if pred(v) {
            rows.push(row as u32);
        }
    }
    SelectionVector { rows }
}

/// Refinement kernel over a `u64` column: keeps the already-selected rows
/// whose cell satisfies `pred`. Rows past the end of `col` (corrupt
/// partitions; callers validate lengths up front) are deselected.
pub fn refine_u64(sel: &mut SelectionVector, col: &[u64], mut pred: impl FnMut(u64) -> bool) {
    sel.rows.retain(|&row| col.get(row as usize).is_some_and(|&v| pred(v)));
}

/// Refinement kernel with a row-offset predicate, for columns whose cells are
/// not plain `u64`s (strings, ORE ciphertext bytes).
pub fn refine_rows(sel: &mut SelectionVector, mut pred: impl FnMut(usize) -> bool) {
    sel.rows.retain(|&row| pred(row as usize));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_len() {
        let sel = SelectionVector::all(5);
        assert_eq!(sel.rows(), &[0, 1, 2, 3, 4]);
        assert_eq!(sel.len(), 5);
        assert!(!sel.is_empty());
        assert!(SelectionVector::all(0).is_empty());
        assert!(SelectionVector::new().is_empty());
    }

    #[test]
    fn select_and_refine_u64() {
        let col: Vec<u64> = (0..100).collect();
        let mut sel = select_u64(&col, |v| v % 2 == 0);
        assert_eq!(sel.len(), 50);
        refine_u64(&mut sel, &col, |v| v < 10);
        assert_eq!(sel.rows(), &[0, 2, 4, 6, 8]);
        refine_u64(&mut sel, &col, |_| false);
        assert!(sel.is_empty());
    }

    #[test]
    fn refine_preserves_order_and_is_intersection() {
        let col: Vec<u64> = (0..1000).map(|i| i * 7 % 13).collect();
        let mut a = SelectionVector::all(col.len());
        refine_u64(&mut a, &col, |v| v > 6);
        let b = select_u64(&col, |v| v > 6);
        assert_eq!(a, b);
        assert!(a.rows().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn refine_deselects_out_of_range_rows() {
        let mut sel = SelectionVector::from_sorted_rows(vec![0, 5, 9]);
        let short_col = vec![1u64; 6];
        refine_u64(&mut sel, &short_col, |_| true);
        assert_eq!(sel.rows(), &[0, 5], "row 9 is past the column end");
    }

    #[test]
    fn batches_cover_everything_once() {
        let sel = SelectionVector::all(BATCH_ROWS * 2 + 17);
        let mut seen = 0usize;
        for batch in sel.batches() {
            assert!(batch.len() <= BATCH_ROWS);
            seen += batch.len();
        }
        assert_eq!(seen, sel.len());
    }

    #[test]
    fn select_rows_generic() {
        let names = ["a", "b", "a", "c", "a"];
        let sel = select_rows(names.len(), |row| names[row] == "a");
        assert_eq!(sel.rows(), &[0, 2, 4]);
    }

    #[test]
    fn exec_mode_defaults_to_vectorized() {
        assert_eq!(ExecMode::default(), ExecMode::Vectorized);
    }

    #[test]
    fn disabled_sink_records_nothing_and_never_reads_the_clock() {
        let mut sink = ProfileSink::disabled();
        assert!(!sink.is_enabled());
        let t0 = sink.begin();
        assert!(t0.is_none(), "disabled sink must not touch the clock");
        sink.finish(t0, "filter:plain:v", 100, 50, 1);
        sink.record(OperatorProfile {
            label: "aggregate".into(),
            rows_in: 50,
            rows_out: 3,
            batches: 1,
            nanos: 1,
        });
        assert!(sink.into_operators().is_empty());
    }

    #[test]
    fn enabled_sink_records_in_order() {
        let mut sink = ProfileSink::enabled();
        let t0 = sink.begin();
        assert!(t0.is_some());
        sink.finish(t0, "filter:plain:v", 100, 50, 1);
        let t1 = sink.begin();
        sink.finish(t1, "aggregate", 50, 3, 1);
        let ops = sink.into_operators();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].label, "filter:plain:v");
        assert_eq!((ops[0].rows_in, ops[0].rows_out, ops[0].batches), (100, 50, 1));
        assert_eq!(ops[1].label, "aggregate");
    }

    #[test]
    fn profile_merge_sums_matching_shapes_and_keeps_mismatches() {
        let op = |label: &str, rows_in: u64| OperatorProfile {
            label: label.to_string(),
            rows_in,
            rows_out: rows_in / 2,
            batches: 1,
            nanos: 10,
        };
        let a = vec![op("filter:det:dept", 100), op("aggregate", 50)];
        let b = vec![op("filter:det:dept", 60), op("aggregate", 30)];
        let merged = merge_operator_profiles(&a, &b);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].rows_in, 160);
        assert_eq!(merged[0].rows_out, 80);
        assert_eq!(merged[0].batches, 2);
        assert_eq!(merged[0].nanos, 20);

        // One side empty: the other passes through unchanged.
        assert_eq!(merge_operator_profiles(&a, &[]), a);
        assert_eq!(merge_operator_profiles(&[], &b), b);

        // Shape mismatch: concatenate, never drop measurements.
        let c = vec![op("scan:scalar", 10)];
        let cat = merge_operator_profiles(&a, &c);
        assert_eq!(cat.len(), 3);
        assert_eq!(cat[2].label, "scan:scalar");
    }
}
