//! Columnar tables split into partitions.
//!
//! Seabed's prototype stores tables in HDFS and processes them with Spark; the
//! engine crate reproduces the part of that substrate Seabed's cost actually
//! depends on: a table is a schema plus a list of horizontal partitions, each
//! partition stores its columns contiguously in memory, and every row has an
//! implicit global identifier (`partition.start_row + offset`) — the
//! consecutive row IDs ASHE's telescoping decryption relies on.

use seabed_error::{SchemaError, SeabedError};
use serde::{Deserialize, Serialize};

/// The type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// Unsigned 64-bit integers (plaintext measures, ASHE words, DET tags).
    UInt64,
    /// Signed 64-bit integers.
    Int64,
    /// UTF-8 strings.
    Utf8,
    /// Variable-length byte strings (Paillier ciphertexts, ORE ciphertexts).
    Bytes,
}

/// A column's values.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ColumnData {
    /// Unsigned integers.
    UInt64(Vec<u64>),
    /// Signed integers.
    Int64(Vec<i64>),
    /// Strings.
    Utf8(Vec<String>),
    /// Byte strings.
    Bytes(Vec<Vec<u8>>),
}

impl ColumnData {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::UInt64(v) => v.len(),
            ColumnData::Int64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
            ColumnData::Bytes(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            ColumnData::UInt64(_) => ColumnType::UInt64,
            ColumnData::Int64(_) => ColumnType::Int64,
            ColumnData::Utf8(_) => ColumnType::Utf8,
            ColumnData::Bytes(_) => ColumnType::Bytes,
        }
    }

    /// An empty column of the given type.
    pub fn empty(ty: ColumnType) -> ColumnData {
        match ty {
            ColumnType::UInt64 => ColumnData::UInt64(Vec::new()),
            ColumnType::Int64 => ColumnData::Int64(Vec::new()),
            ColumnType::Utf8 => ColumnData::Utf8(Vec::new()),
            ColumnType::Bytes => ColumnData::Bytes(Vec::new()),
        }
    }

    /// Accesses a `u64` cell; panics if the column has a different type.
    pub fn u64_at(&self, row: usize) -> u64 {
        match self {
            ColumnData::UInt64(v) => v[row],
            other => panic!("column is {:?}, not UInt64", other.column_type()),
        }
    }

    /// Total variant of [`ColumnData::u64_at`]: `None` on type mismatch or an
    /// out-of-range row. Query execution validates column types up front and
    /// uses these accessors in the scan so untrusted plan shapes can never
    /// panic the engine.
    pub fn u64_get(&self, row: usize) -> Option<u64> {
        match self {
            ColumnData::UInt64(v) => v.get(row).copied(),
            _ => None,
        }
    }

    /// Borrows the whole `u64` column as a slice, or `None` on type mismatch.
    /// The vectorized scan resolves each needed column once per partition via
    /// these total slice accessors, then runs allocation-free kernel loops.
    pub fn u64_slice(&self) -> Option<&[u64]> {
        match self {
            ColumnData::UInt64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the whole string column, or `None` on type mismatch.
    pub fn str_slice(&self) -> Option<&[String]> {
        match self {
            ColumnData::Utf8(v) => Some(v),
            _ => None,
        }
    }

    /// Borrows the whole bytes column, or `None` on type mismatch.
    pub fn bytes_slice(&self) -> Option<&[Vec<u8>]> {
        match self {
            ColumnData::Bytes(v) => Some(v),
            _ => None,
        }
    }

    /// Total variant of [`ColumnData::str_at`].
    pub fn str_get(&self, row: usize) -> Option<&str> {
        match self {
            ColumnData::Utf8(v) => v.get(row).map(|s| s.as_str()),
            _ => None,
        }
    }

    /// Total variant of [`ColumnData::bytes_at`].
    pub fn bytes_get(&self, row: usize) -> Option<&[u8]> {
        match self {
            ColumnData::Bytes(v) => v.get(row).map(|b| b.as_slice()),
            _ => None,
        }
    }

    /// Accesses an `i64` cell; panics if the column has a different type.
    pub fn i64_at(&self, row: usize) -> i64 {
        match self {
            ColumnData::Int64(v) => v[row],
            other => panic!("column is {:?}, not Int64", other.column_type()),
        }
    }

    /// Accesses a string cell; panics if the column has a different type.
    pub fn str_at(&self, row: usize) -> &str {
        match self {
            ColumnData::Utf8(v) => &v[row],
            other => panic!("column is {:?}, not Utf8", other.column_type()),
        }
    }

    /// Accesses a bytes cell; panics if the column has a different type.
    pub fn bytes_at(&self, row: usize) -> &[u8] {
        match self {
            ColumnData::Bytes(v) => &v[row],
            other => panic!("column is {:?}, not Bytes", other.column_type()),
        }
    }

    /// Borrows the underlying `u64` vector; panics on type mismatch.
    pub fn as_u64(&self) -> &[u64] {
        match self {
            ColumnData::UInt64(v) => v,
            other => panic!("column is {:?}, not UInt64", other.column_type()),
        }
    }

    /// Takes a slice of rows `[from, to)` into a new column.
    pub fn slice(&self, from: usize, to: usize) -> ColumnData {
        match self {
            ColumnData::UInt64(v) => ColumnData::UInt64(v[from..to].to_vec()),
            ColumnData::Int64(v) => ColumnData::Int64(v[from..to].to_vec()),
            ColumnData::Utf8(v) => ColumnData::Utf8(v[from..to].to_vec()),
            ColumnData::Bytes(v) => ColumnData::Bytes(v[from..to].to_vec()),
        }
    }
}

/// A named field of a schema.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// The schema of a table.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    /// Ordered fields.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new<I: IntoIterator<Item = (String, ColumnType)>>(fields: I) -> Schema {
        Schema {
            fields: fields.into_iter().map(|(name, ty)| Field { name, ty }).collect(),
        }
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// One horizontal partition of a table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Global row identifier of this partition's first row.
    pub start_row: u64,
    /// Column data, in schema order.
    pub columns: Vec<ColumnData>,
}

impl Partition {
    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Global row identifier of local row `offset`.
    pub fn row_id(&self, offset: usize) -> u64 {
        self.start_row + offset as u64
    }

    /// Column by index.
    pub fn column(&self, index: usize) -> &ColumnData {
        &self.columns[index]
    }

    /// Total variant of [`Partition::column`]: `None` when out of range.
    pub fn column_get(&self, index: usize) -> Option<&ColumnData> {
        self.columns.get(index)
    }
}

/// A partitioned, columnar, in-memory table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Schema shared by all partitions.
    pub schema: Schema,
    /// Horizontal partitions with consecutive global row IDs.
    pub partitions: Vec<Partition>,
}

impl Table {
    /// Builds a table from whole columns, splitting rows into
    /// `num_partitions` nearly equal partitions with consecutive global IDs.
    pub fn from_columns(schema: Schema, columns: Vec<ColumnData>, num_partitions: usize) -> Table {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        let num_rows = columns.first().map_or(0, |c| c.len());
        for (field, col) in schema.fields.iter().zip(columns.iter()) {
            assert_eq!(col.len(), num_rows, "column {} has inconsistent length", field.name);
            assert_eq!(col.column_type(), field.ty, "column {} has wrong type", field.name);
        }
        let num_partitions = num_partitions.max(1);
        let chunk = num_rows.div_ceil(num_partitions).max(1);
        let mut partitions = Vec::new();
        let mut start = 0usize;
        while start < num_rows {
            let end = (start + chunk).min(num_rows);
            partitions.push(Partition {
                start_row: start as u64,
                columns: columns.iter().map(|c| c.slice(start, end)).collect(),
            });
            start = end;
        }
        if partitions.is_empty() {
            partitions.push(Partition {
                start_row: 0,
                columns: schema.fields.iter().map(|f| ColumnData::empty(f.ty)).collect(),
            });
        }
        Table { schema, partitions }
    }

    /// Total number of rows.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|p| p.num_rows()).sum()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.schema.index_of(name)
    }

    /// Index of a column by name, as a [`SeabedError::Schema`] when missing.
    pub fn require_column(&self, name: &str) -> Result<usize, SeabedError> {
        self.column_index(name)
            .ok_or_else(|| SchemaError::UnknownPhysicalColumn(name.to_string()).into())
    }

    /// Index of a column that must have a specific physical type.
    pub fn require_typed_column(&self, name: &str, ty: ColumnType) -> Result<usize, SeabedError> {
        let index = self.require_column(name)?;
        let actual = self.schema.fields[index].ty;
        if actual == ty {
            Ok(index)
        } else {
            Err(SchemaError::TypeMismatch {
                column: name.to_string(),
                expected: format!("{ty:?}"),
                actual: format!("{actual:?}"),
            }
            .into())
        }
    }

    /// Checks that every partition physically matches the schema: same column
    /// count, same column types, and consistent row counts. [`Table::from_columns`]
    /// establishes these invariants, but `Table`'s fields are public (the
    /// storage layer and tests build partitions directly), so query execution
    /// re-validates the layout once up front and the scan loops can then rely
    /// on it instead of silently mis-reading corrupt partitions.
    pub fn validate_layout(&self) -> Result<(), SeabedError> {
        for (p, partition) in self.partitions.iter().enumerate() {
            if partition.columns.len() != self.schema.len() {
                return Err(SchemaError::CorruptPartition {
                    partition: p,
                    detail: format!(
                        "has {} columns, schema has {}",
                        partition.columns.len(),
                        self.schema.len()
                    ),
                }
                .into());
            }
            let rows = partition.num_rows();
            for (field, column) in self.schema.fields.iter().zip(partition.columns.iter()) {
                if column.column_type() != field.ty {
                    return Err(SchemaError::CorruptPartition {
                        partition: p,
                        detail: format!(
                            "column {} is {:?}, schema says {:?}",
                            field.name,
                            column.column_type(),
                            field.ty
                        ),
                    }
                    .into());
                }
                if column.len() != rows {
                    return Err(SchemaError::CorruptPartition {
                        partition: p,
                        detail: format!("column {} has {} rows, expected {rows}", field.name, column.len()),
                    }
                    .into());
                }
            }
        }
        Ok(())
    }

    /// Gathers an entire column across partitions (test/debug helper; real
    /// queries never materialise whole columns at the driver).
    pub fn gather_u64(&self, name: &str) -> Option<Vec<u64>> {
        let idx = self.column_index(name)?;
        let mut out = Vec::with_capacity(self.num_rows());
        for p in &self.partitions {
            match &p.columns[idx] {
                ColumnData::UInt64(v) => out.extend_from_slice(v),
                _ => return None,
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table(rows: usize, partitions: usize) -> Table {
        let schema = Schema::new([
            ("id".to_string(), ColumnType::UInt64),
            ("value".to_string(), ColumnType::UInt64),
            ("name".to_string(), ColumnType::Utf8),
        ]);
        let columns = vec![
            ColumnData::UInt64((0..rows as u64).collect()),
            ColumnData::UInt64((0..rows as u64).map(|i| i * 2).collect()),
            ColumnData::Utf8((0..rows).map(|i| format!("row{i}")).collect()),
        ];
        Table::from_columns(schema, columns, partitions)
    }

    #[test]
    fn partitioning_preserves_rows_and_ids() {
        let t = sample_table(1000, 7);
        assert_eq!(t.num_rows(), 1000);
        assert_eq!(t.num_partitions(), 7);
        // Global row IDs are consecutive across partitions.
        let mut expected_start = 0u64;
        for p in &t.partitions {
            assert_eq!(p.start_row, expected_start);
            expected_start += p.num_rows() as u64;
        }
        assert_eq!(expected_start, 1000);
    }

    #[test]
    fn gather_reconstructs_column() {
        let t = sample_table(100, 3);
        assert_eq!(
            t.gather_u64("value").unwrap(),
            (0..100u64).map(|i| i * 2).collect::<Vec<_>>()
        );
        assert!(t.gather_u64("name").is_none(), "type mismatch returns None");
        assert!(t.gather_u64("missing").is_none());
    }

    #[test]
    fn empty_table_has_one_empty_partition() {
        let schema = Schema::new([("x".to_string(), ColumnType::UInt64)]);
        let t = Table::from_columns(schema, vec![ColumnData::UInt64(vec![])], 4);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_partitions(), 1);
    }

    #[test]
    fn more_partitions_than_rows() {
        let t = sample_table(3, 10);
        assert_eq!(t.num_rows(), 3);
        assert!(t.num_partitions() <= 3);
    }

    #[test]
    fn cell_accessors() {
        let t = sample_table(10, 2);
        let p = &t.partitions[0];
        assert_eq!(p.column(1).u64_at(3), 6);
        assert_eq!(p.column(2).str_at(2), "row2");
        assert_eq!(p.row_id(4), 4);
        let p1 = &t.partitions[1];
        assert_eq!(p1.row_id(0), p1.start_row);
    }

    #[test]
    #[should_panic]
    fn type_mismatch_panics() {
        let t = sample_table(10, 1);
        t.partitions[0].column(2).u64_at(0);
    }

    #[test]
    #[should_panic]
    fn schema_column_length_mismatch_panics() {
        let schema = Schema::new([
            ("a".to_string(), ColumnType::UInt64),
            ("b".to_string(), ColumnType::UInt64),
        ]);
        Table::from_columns(
            schema,
            vec![ColumnData::UInt64(vec![1, 2]), ColumnData::UInt64(vec![1])],
            1,
        );
    }

    #[test]
    fn slice_accessors_are_total() {
        let t = sample_table(10, 2);
        let p = &t.partitions[0];
        assert_eq!(p.column(0).u64_slice().unwrap().len(), p.num_rows());
        assert_eq!(p.column(2).str_slice().unwrap()[2], "row2");
        assert!(p.column(2).u64_slice().is_none());
        assert!(p.column(0).str_slice().is_none());
        assert!(p.column(0).bytes_slice().is_none());
        let b = ColumnData::Bytes(vec![vec![1u8], vec![2, 3]]);
        assert_eq!(b.bytes_slice().unwrap().len(), 2);
    }

    #[test]
    fn validate_layout_accepts_well_formed_tables() {
        assert!(sample_table(100, 3).validate_layout().is_ok());
        let empty = Table::from_columns(
            Schema::new([("x".to_string(), ColumnType::UInt64)]),
            vec![ColumnData::UInt64(vec![])],
            4,
        );
        assert!(empty.validate_layout().is_ok());
    }

    #[test]
    fn validate_layout_rejects_corrupt_partitions() {
        // Mistyped column data (fields are public, so storage layers and
        // tests can build this shape).
        let mut t = sample_table(10, 2);
        let n = t.partitions[0].num_rows();
        t.partitions[0].columns[1] = ColumnData::Utf8(vec!["x".to_string(); n]);
        assert!(matches!(
            t.validate_layout(),
            Err(SeabedError::Schema(SchemaError::CorruptPartition { partition: 0, .. }))
        ));
        // Short column.
        let mut t = sample_table(10, 2);
        t.partitions[1].columns[1] = ColumnData::UInt64(vec![7]);
        assert!(matches!(
            t.validate_layout(),
            Err(SeabedError::Schema(SchemaError::CorruptPartition { partition: 1, .. }))
        ));
        // Missing column.
        let mut t = sample_table(10, 2);
        t.partitions[0].columns.pop();
        assert!(matches!(
            t.validate_layout(),
            Err(SeabedError::Schema(SchemaError::CorruptPartition { partition: 0, .. }))
        ));
    }

    #[test]
    fn column_slice_and_types() {
        let c = ColumnData::Int64(vec![-5, 0, 5, 10]);
        assert_eq!(c.slice(1, 3), ColumnData::Int64(vec![0, 5]));
        assert_eq!(c.column_type(), ColumnType::Int64);
        assert_eq!(c.i64_at(0), -5);
        let b = ColumnData::Bytes(vec![vec![1, 2], vec![3]]);
        assert_eq!(b.bytes_at(1), &[3]);
        assert_eq!(ColumnData::empty(ColumnType::Utf8).len(), 0);
    }
}
