//! Network model for the server → client (proxy) link.
//!
//! The paper's end-to-end numbers place the client in the same datacenter
//! (2 Gbps TCP), then §6.6 artificially degrades the link to 100 Mbps/10 ms
//! and 10 Mbps/100 ms with `tc` to show that Seabed's compressed ID lists keep
//! the WAN penalty small. The engine reproduces this with a simple
//! bandwidth + RTT model applied to the measured result size.

use std::time::Duration;

/// A point-to-point network link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkModel {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Round-trip time.
    pub rtt: Duration,
}

impl NetworkModel {
    /// The in-cluster link used by default in the paper's experiments
    /// (≈2 Gbps, negligible RTT).
    pub fn datacenter() -> NetworkModel {
        NetworkModel {
            bandwidth_bps: 2e9,
            rtt: Duration::from_micros(200),
        }
    }

    /// The 100 Mbps / 10 ms link of §6.6.
    pub fn wan_100mbps() -> NetworkModel {
        NetworkModel {
            bandwidth_bps: 100e6,
            rtt: Duration::from_millis(10),
        }
    }

    /// The 10 Mbps / 100 ms link of §6.6.
    pub fn wan_10mbps() -> NetworkModel {
        NetworkModel {
            bandwidth_bps: 10e6,
            rtt: Duration::from_millis(100),
        }
    }

    /// Time to transfer `bytes` over the link: one RTT plus serialization time.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        let seconds = (bytes as f64 * 8.0) / self.bandwidth_bps;
        self.rtt + Duration::from_secs_f64(seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let net = NetworkModel::wan_100mbps();
        let small = net.transfer_time(1_000);
        let large = net.transfer_time(10_000_000);
        assert!(large > small);
        // 10 MB at 100 Mbps is 0.8 s of serialization.
        assert!(large >= Duration::from_millis(800));
        assert!(large < Duration::from_millis(900));
    }

    #[test]
    fn rtt_dominates_tiny_transfers() {
        let net = NetworkModel::wan_10mbps();
        let t = net.transfer_time(100);
        assert!(t >= Duration::from_millis(100));
        assert!(t < Duration::from_millis(102));
    }

    #[test]
    fn datacenter_link_is_fast() {
        let net = NetworkModel::datacenter();
        // 160 KB (a typical Ad-Analytics ID list) transfers in well under 10 ms.
        assert!(net.transfer_time(163_500) < Duration::from_millis(10));
    }

    #[test]
    fn slower_links_are_slower() {
        let bytes = 1_000_000;
        assert!(NetworkModel::wan_10mbps().transfer_time(bytes) > NetworkModel::wan_100mbps().transfer_time(bytes));
        assert!(NetworkModel::wan_100mbps().transfer_time(bytes) > NetworkModel::datacenter().transfer_time(bytes));
    }
}
