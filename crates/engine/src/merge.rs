//! The partial-aggregate merge algebra shared by every gather point.
//!
//! Seabed's reduce step is *additive*: each partition task produces, per
//! (possibly inflated) group key, one partial state per requested aggregate —
//! an ASHE partial sum with its ID list, a count's ID list, or a MIN/MAX ORE
//! candidate — and the driver folds partials pairwise. With `seabed-dist`,
//! the exact same fold happens one level up: workers fold their partitions'
//! partials locally, and the coordinator folds the per-worker partials it
//! gathered over the network. Both folds MUST be the same implementation, or
//! a distributed query could silently diverge from the single-server answer;
//! this module is that single implementation.
//!
//! The algebra is **associative**, **commutative**, and **order-invariant**:
//! any bracketing of any permutation of the same set of partials folds to the
//! same state (`tests/merge_properties.rs` pins this through real
//! ASHE/SPLASHE pipelines), so shard gather order, straggler arrival order
//! and re-dispatch cannot change results.
//!
//! * `Sum` — ASHE words add with wrapping arithmetic (the masked group is
//!   `(Z/2^64, +)`), ID lists union; both operations are commutative
//!   monoids.
//! * `Count` — ID-list union only (the count is derived at finalization).
//! * `Extreme` — the ORE-greater (or -smaller) candidate wins; ORE exposes a
//!   total order over well-formed ciphertexts, and corrupt-width candidates
//!   are incomparable, never displace a well-formed one, and never panic the
//!   fold.

use seabed_ashe::IdSet;
use seabed_crypto::ore::{try_compare_symbols, OreCiphertext};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A MIN/MAX candidate: the winning row's ORE ciphertext (needed so candidates
/// from different partitions/workers stay comparable), its companion ASHE
/// value word, and its row identifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtremeCandidate {
    /// ORE ciphertext of the candidate row's ordering column.
    pub ciphertext: OreCiphertext,
    /// ASHE word of the companion value column at the candidate row.
    pub value_word: u64,
    /// Global row identifier of the candidate row.
    pub row_id: u64,
}

/// The mergeable state of one aggregate of one group.
///
/// This is what partition tasks accumulate into, what crosses the wire from
/// `seabed-dist` workers to the coordinator, and what both the driver and the
/// coordinator fold with [`PartialAggregate::merge`]. Finalization into the
/// client-facing `EncryptedAggregate` (counting the IDs, dropping the ORE
/// ciphertext) happens once, at whichever node answers the query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartialAggregate {
    /// An ASHE partial sum: masked wrapping sum plus the selected IDs.
    Sum {
        /// Wrapping sum of the selected rows' ASHE ciphertext words.
        value: u64,
        /// Selected row identifiers.
        ids: IdSet,
    },
    /// A row count, kept as the ID set it is derived from.
    Count {
        /// Selected row identifiers.
        ids: IdSet,
    },
    /// A MIN/MAX candidate under the ORE order.
    Extreme {
        /// Best candidate seen so far (`None` when no row matched).
        best: Option<ExtremeCandidate>,
        /// True for MAX, false for MIN.
        want_max: bool,
    },
}

impl PartialAggregate {
    /// Folds `other` into `self`.
    ///
    /// All partial vectors for one query are built from the same aggregate
    /// list, so the kinds always line up; a mismatched pair (possible only
    /// with a forged distributed partial — which the `seabed-dist`
    /// coordinator shape-checks against the query and rejects before
    /// anything reaches this fold) leaves `self` unchanged rather than
    /// panicking.
    pub fn merge(&mut self, other: PartialAggregate) {
        match (self, other) {
            (PartialAggregate::Sum { value, ids }, PartialAggregate::Sum { value: v2, ids: i2 }) => {
                *value = value.wrapping_add(v2);
                *ids = ids.union(&i2);
            }
            (PartialAggregate::Count { ids }, PartialAggregate::Count { ids: i2 }) => {
                *ids = ids.union(&i2);
            }
            (
                PartialAggregate::Extreme { best, want_max },
                PartialAggregate::Extreme {
                    best: Some(candidate), ..
                },
            ) if extreme_replaces(best.as_ref(), &candidate.ciphertext.symbols, *want_max) => {
                *best = Some(candidate);
            }
            _ => {}
        }
    }

    /// True when this partial reflects zero matched rows (the identity of the
    /// merge for its kind).
    pub fn is_empty(&self) -> bool {
        match self {
            PartialAggregate::Sum { value, ids } => *value == 0 && ids.is_empty(),
            PartialAggregate::Count { ids } => ids.is_empty(),
            PartialAggregate::Extreme { best, .. } => best.is_none(),
        }
    }
}

/// Whether a candidate with the given ORE symbols displaces `best` under the
/// MIN/MAX order. Takes the symbols as a borrowed slice so scan loops can
/// test before allocating a candidate. Total, and corrupt-width symbols never
/// replace anything — not even an empty `best`, where an incomparable
/// squatter would otherwise block every honest later candidate.
pub fn extreme_replaces(best: Option<&ExtremeCandidate>, candidate_symbols: &[u8], want_max: bool) -> bool {
    if candidate_symbols.len() != seabed_crypto::ore::ORE_BITS {
        return false;
    }
    match best {
        None => true,
        Some(current) => try_compare_symbols(candidate_symbols, &current.ciphertext.symbols).is_some_and(|ord| {
            if want_max {
                ord == Ordering::Greater
            } else {
                ord == Ordering::Less
            }
        }),
    }
}

/// Partial results of one scan unit (a partition, a worker shard, or a whole
/// server): per (possibly inflated) group key, one partial per aggregate.
pub type PartialGroups = HashMap<Vec<u64>, Vec<PartialAggregate>>;

/// Folds `from` into `into`, group by group. Vacant keys move over wholesale;
/// occupied keys merge aggregate-by-aggregate via [`PartialAggregate::merge`].
/// This is the single gather implementation shared by the in-process driver
/// merge and the `seabed-dist` coordinator merge.
pub fn merge_partial_groups(into: &mut PartialGroups, from: PartialGroups) {
    for (key, partials) in from {
        match into.entry(key) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(partials);
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                for (a, b) in slot.get_mut().iter_mut().zip(partials) {
                    a.merge(b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum(value: u64, ids: &[u64]) -> PartialAggregate {
        PartialAggregate::Sum {
            value,
            ids: IdSet::from_sorted_ids(ids),
        }
    }

    fn extreme(bits: u8, value_word: u64, row_id: u64, want_max: bool) -> PartialAggregate {
        PartialAggregate::Extreme {
            best: Some(ExtremeCandidate {
                ciphertext: OreCiphertext {
                    symbols: vec![bits; seabed_crypto::ore::ORE_BITS],
                },
                value_word,
                row_id,
            }),
            want_max,
        }
    }

    #[test]
    fn sums_add_and_ids_union() {
        let mut a = sum(10, &[1, 2]);
        a.merge(sum(u64::MAX, &[2, 7]));
        let PartialAggregate::Sum { value, ids } = &a else {
            panic!("kind changed");
        };
        assert_eq!(*value, 9, "wrapping add");
        assert_eq!(ids.iter().collect::<Vec<_>>(), vec![1, 2, 7]);
    }

    #[test]
    fn merge_is_commutative_and_associative_for_sums() {
        let parts = [sum(3, &[0, 5]), sum(9, &[1]), sum(u64::MAX - 1, &[5, 9])];
        let fold = |order: &[usize]| {
            let mut acc = sum(0, &[]);
            for &i in order {
                acc.merge(parts[i].clone());
            }
            acc
        };
        let reference = fold(&[0, 1, 2]);
        for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            assert_eq!(fold(&order), reference, "order {order:?}");
        }
    }

    #[test]
    fn extreme_picks_ore_winner_regardless_of_order() {
        // All-zero symbols < all-one symbols under the prefix compare.
        let lo = extreme(0, 100, 1, true);
        let hi = extreme(1, 200, 2, true);
        let mut a = lo.clone();
        a.merge(hi.clone());
        let mut b = hi.clone();
        b.merge(lo.clone());
        assert_eq!(a, b);
        assert!(matches!(
            a,
            PartialAggregate::Extreme {
                best: Some(ExtremeCandidate { value_word: 200, .. }),
                ..
            }
        ));
        // MIN flips the winner.
        let mut c = PartialAggregate::Extreme {
            best: None,
            want_max: false,
        };
        c.merge(extreme(1, 200, 2, false));
        c.merge(extreme(0, 100, 1, false));
        assert!(matches!(
            c,
            PartialAggregate::Extreme {
                best: Some(ExtremeCandidate { value_word: 100, .. }),
                ..
            }
        ));
    }

    #[test]
    fn corrupt_width_candidate_never_wins_or_panics() {
        let corrupt = PartialAggregate::Extreme {
            best: Some(ExtremeCandidate {
                ciphertext: OreCiphertext { symbols: vec![9; 3] },
                value_word: 999,
                row_id: 99,
            }),
            want_max: true,
        };
        let mut a = extreme(1, 200, 2, true);
        a.merge(corrupt.clone());
        assert!(matches!(
            &a,
            PartialAggregate::Extreme {
                best: Some(ExtremeCandidate { value_word: 200, .. }),
                ..
            }
        ));
        // Nor may it squat on an empty best, where it would be incomparable
        // with (and thus block) every honest later candidate.
        let mut b = PartialAggregate::Extreme {
            best: None,
            want_max: true,
        };
        b.merge(corrupt);
        b.merge(extreme(1, 200, 2, true));
        assert!(matches!(
            &b,
            PartialAggregate::Extreme {
                best: Some(ExtremeCandidate { value_word: 200, .. }),
                ..
            }
        ));
    }

    #[test]
    fn mismatched_kinds_leave_self_unchanged() {
        let mut a = sum(5, &[1]);
        a.merge(PartialAggregate::Count { ids: IdSet::single(3) });
        assert_eq!(a, sum(5, &[1]));
    }

    #[test]
    fn group_maps_merge_by_key() {
        let mut into: PartialGroups = HashMap::new();
        into.insert(vec![1], vec![sum(10, &[0])]);
        let mut from: PartialGroups = HashMap::new();
        from.insert(vec![1], vec![sum(5, &[3])]);
        from.insert(vec![2], vec![sum(7, &[4])]);
        merge_partial_groups(&mut into, from);
        assert_eq!(into.len(), 2);
        assert_eq!(into[&vec![1u64]], vec![sum(15, &[0, 3])]);
        assert_eq!(into[&vec![2u64]], vec![sum(7, &[4])]);
    }

    /// The algebra is deliberately NOT idempotent: folding the same Sum
    /// partial twice double-counts its masked value, while the ID union
    /// absorbs the duplicate IDs — so the corrupted state still *looks*
    /// plausible and nothing downstream can detect it. This is exactly why
    /// the `seabed-dist` coordinator discards duplicate and hedge-loser
    /// partials by sequence number *before* the fold: dedup-by-seq is the
    /// only line of defense against merging twice.
    #[test]
    fn double_merging_the_same_partial_double_counts_undetectably() {
        let part = sum(21, &[1, 4]);
        let mut once = sum(0, &[]);
        once.merge(part.clone());
        let mut twice = once.clone();
        twice.merge(part);
        let PartialAggregate::Sum { value: v1, ids: i1 } = &once else {
            panic!("kind changed");
        };
        let PartialAggregate::Sum { value: v2, ids: i2 } = &twice else {
            panic!("kind changed");
        };
        assert_eq!(*v1, 21);
        assert_eq!(*v2, 42, "the masked sum silently double-counts");
        assert_eq!(
            i1.iter().collect::<Vec<_>>(),
            i2.iter().collect::<Vec<_>>(),
            "the ID union hides the duplication — the state stays plausible"
        );
    }

    /// Same at the group-map level: replaying a whole shard partial (a hedge
    /// loser folded alongside the winner) corrupts every group's sum while
    /// every group key and ID set still validates.
    #[test]
    fn replaying_a_shard_partial_corrupts_group_sums() {
        let shard = || {
            let mut groups: PartialGroups = HashMap::new();
            groups.insert(vec![1], vec![sum(10, &[0, 2])]);
            groups.insert(vec![2], vec![sum(7, &[5])]);
            groups
        };
        let mut merged: PartialGroups = HashMap::new();
        merge_partial_groups(&mut merged, shard());
        let mut replayed = merged.clone();
        merge_partial_groups(&mut replayed, shard());
        assert_eq!(replayed[&vec![1u64]], vec![sum(20, &[0, 2])]);
        assert_eq!(replayed[&vec![2u64]], vec![sum(14, &[5])]);
        assert_ne!(
            merged, replayed,
            "a replayed partial must change the fold — it can only be stopped by seq"
        );
    }

    #[test]
    fn empty_identity() {
        assert!(sum(0, &[]).is_empty());
        assert!(!sum(0, &[1]).is_empty());
        assert!(PartialAggregate::Count { ids: IdSet::new() }.is_empty());
        assert!(PartialAggregate::Extreme {
            best: None,
            want_max: true
        }
        .is_empty());
        let mut a = sum(42, &[1, 2]);
        a.merge(sum(0, &[]));
        assert_eq!(a, sum(42, &[1, 2]), "empty partial is the identity");
    }
}
