//! # seabed-engine
//!
//! A partitioned, columnar, multi-worker in-memory analytics engine — the
//! substrate Seabed runs on in this reproduction, standing in for the Apache
//! Spark + HDFS deployment of the original prototype.
//!
//! The engine deliberately models only what Seabed's evaluation depends on:
//!
//! * [`table`] — columnar tables split into partitions whose rows carry
//!   consecutive global identifiers (ASHE's telescoping decryption needs
//!   exactly this property);
//! * [`cluster`] — parallel execution of per-partition tasks with measured
//!   task times and a simulated cluster cost model (worker count, per-task
//!   overhead, stragglers) so the core-count sweeps of Figure 7 can be
//!   reproduced on a laptop;
//! * [`exec`] — vectorized execution primitives: selection vectors, batched
//!   filter/aggregation kernels, and the [`ExecMode`] knob that switches the
//!   scan between the row-at-a-time reference path and the column-at-a-time
//!   fast path;
//! * [`merge`] — the partial-aggregate merge algebra (ASHE partial sums,
//!   ID-list unions, MIN/MAX ORE candidates) shared by the in-process driver
//!   merge and the `seabed-dist` coordinator gather, so the two can never
//!   diverge;
//! * [`netmodel`] — the server→client bandwidth/RTT model used for the WAN
//!   experiments of §6.6;
//! * [`storage`] — on-disk / in-memory size accounting (Table 5) and a flat
//!   binary serialization standing in for Protobuf-on-HDFS.

#![warn(missing_docs)]

pub mod cluster;
pub mod exec;
pub mod merge;
pub mod netmodel;
pub mod storage;
pub mod table;

pub use cluster::{Cluster, ClusterConfig, ExecStats, TaskOutput};
pub use exec::{merge_operator_profiles, ExecMode, OperatorProfile, ProfileSink, SelectionVector};
pub use merge::{merge_partial_groups, ExtremeCandidate, PartialAggregate, PartialGroups};
pub use netmodel::NetworkModel;
pub use storage::{table_disk_size, table_memory_size};
pub use table::{ColumnData, ColumnType, Field, Partition, Schema, Table};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn partitioning_never_loses_rows(rows in 0usize..2_000, partitions in 1usize..32) {
            let schema = Schema::new([("v".to_string(), ColumnType::UInt64)]);
            let data: Vec<u64> = (0..rows as u64).collect();
            let t = Table::from_columns(schema, vec![ColumnData::UInt64(data.clone())], partitions);
            prop_assert_eq!(t.num_rows(), rows);
            prop_assert_eq!(t.gather_u64("v").unwrap(), data);
        }

        #[test]
        fn serialization_roundtrip_all_column_types(rows in 0usize..500, partitions in 1usize..8) {
            let schema = Schema::new([
                ("a".to_string(), ColumnType::UInt64),
                ("b".to_string(), ColumnType::Utf8),
                ("c".to_string(), ColumnType::Int64),
                ("d".to_string(), ColumnType::Bytes),
            ]);
            let t = Table::from_columns(
                schema,
                vec![
                    ColumnData::UInt64((0..rows as u64).map(|i| i * 31).collect()),
                    ColumnData::Utf8((0..rows).map(|i| format!("s{i}")).collect()),
                    ColumnData::Int64((0..rows as i64).map(|i| 250 - i).collect()),
                    ColumnData::Bytes((0..rows).map(|i| vec![(i % 256) as u8; i % 7]).collect()),
                ],
                partitions,
            );
            let bytes = storage::serialize_table(&t);
            prop_assert_eq!(storage::deserialize_table(&bytes).unwrap(), t);
        }

        #[test]
        fn truncated_serialization_never_panics(rows in 0usize..120, partitions in 1usize..6, cut_seed in any::<u64>()) {
            let schema = Schema::new([
                ("a".to_string(), ColumnType::UInt64),
                ("b".to_string(), ColumnType::Bytes),
            ]);
            let t = Table::from_columns(
                schema,
                vec![
                    ColumnData::UInt64((0..rows as u64).collect()),
                    ColumnData::Bytes((0..rows).map(|i| vec![i as u8; i % 5]).collect()),
                ],
                partitions,
            );
            let bytes = storage::serialize_table(&t);
            let cut = (cut_seed % bytes.len() as u64) as usize;
            // Corruption by truncation must be reported, never panic.
            prop_assert!(storage::deserialize_table(&bytes[..cut]).is_none());
        }

        #[test]
        fn distributed_sum_equals_sequential_sum(rows in 0usize..5_000, partitions in 1usize..16, workers in 1usize..64) {
            let schema = Schema::new([("v".to_string(), ColumnType::UInt64)]);
            let data: Vec<u64> = (0..rows as u64).map(|i| i % 997).collect();
            let expected: u64 = data.iter().sum();
            let t = Table::from_columns(schema, vec![ColumnData::UInt64(data)], partitions);
            let cluster = Cluster::new(ClusterConfig::with_workers(workers));
            let (parts, stats) = cluster.run(&t, |p| {
                TaskOutput::new(p.column(0).as_u64().iter().sum::<u64>(), 8)
            });
            prop_assert_eq!(parts.iter().sum::<u64>(), expected);
            prop_assert_eq!(stats.tasks, t.num_partitions());
        }
    }
}
