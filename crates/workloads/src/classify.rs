//! Query-support classification (Table 4) and the MDX function matrix
//! (Table 6).
//!
//! Section 5 of the paper analyses three query populations — the Ad-Analytics
//! log, TPC-DS and the MDX API — and buckets each query into one of four
//! support categories: fully on the server, client pre-processing, client
//! post-processing, or two round-trips. This module reproduces the
//! classification logic for queries expressed in the repo's dialect, carries
//! the full Table 6 MDX function matrix, and aggregates counts per category so
//! the Table 4 harness can regenerate the row shapes.

use seabed_query::{parse, AggregateFunction, Query, SelectItem, SupportCategory};
use std::collections::BTreeMap;

/// Classifies a single query in this repo's dialect into the paper's four
/// support categories.
pub fn classify_query(query: &Query) -> SupportCategory {
    let mut category = SupportCategory::ServerOnly;
    for item in &query.select {
        if let SelectItem::Aggregate { func, .. } = item {
            let c = match func {
                AggregateFunction::Sum | AggregateFunction::Count | AggregateFunction::Min | AggregateFunction::Max => {
                    SupportCategory::ServerOnly
                }
                // AVG needs only a final division: the paper still counts it
                // as server-supported (Table 6, row 2).
                AggregateFunction::Avg => SupportCategory::ServerOnly,
                AggregateFunction::Variance | AggregateFunction::Stddev => SupportCategory::ClientPreProcessing,
            };
            category = category.max_with(c);
        }
    }
    category
}

/// Classifies a SQL string, returning `None` when it does not parse (the
/// paper's ad-analytics heuristic similarly works on query structure only).
pub fn classify_sql(sql: &str) -> Option<SupportCategory> {
    parse(sql).ok().map(|q| classify_query(&q))
}

/// Counts per support category, i.e. one row of Table 4.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CategoryCounts {
    /// Queries answered entirely on the server.
    pub server_only: usize,
    /// Queries needing client pre-processing (e.g. uploaded squares).
    pub client_pre: usize,
    /// Queries needing client post-processing.
    pub client_post: usize,
    /// Queries needing two round-trips.
    pub two_round_trips: usize,
}

impl CategoryCounts {
    /// Total queries classified.
    pub fn total(&self) -> usize {
        self.server_only + self.client_pre + self.client_post + self.two_round_trips
    }

    /// Adds a query of the given category.
    pub fn add(&mut self, category: SupportCategory) {
        match category {
            SupportCategory::ServerOnly => self.server_only += 1,
            SupportCategory::ClientPreProcessing => self.client_pre += 1,
            SupportCategory::ClientPostProcessing => self.client_post += 1,
            SupportCategory::TwoRoundTrips => self.two_round_trips += 1,
        }
    }

    /// Fraction of queries supported purely on the server.
    pub fn server_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.server_only as f64 / self.total() as f64
        }
    }
}

/// Classifies a whole query set.
pub fn classify_set<'a, I: IntoIterator<Item = &'a str>>(queries: I) -> CategoryCounts {
    let mut counts = CategoryCounts::default();
    for sql in queries {
        if let Some(category) = classify_sql(sql) {
            counts.add(category);
        } else {
            // Queries outside the dialect (arbitrary user functions) need
            // client post-processing, mirroring the paper's heuristic.
            counts.add(SupportCategory::ClientPostProcessing);
        }
    }
    counts
}

/// One MDX function of Table 6.
#[derive(Clone, Debug)]
pub struct MdxFunction {
    /// Function name.
    pub name: &'static str,
    /// How Seabed supports it.
    pub how: &'static str,
    /// Support category ("Seabed Type" column).
    pub category: SupportCategory,
}

/// The full Table 6 matrix: all 38 MDX functions and how Seabed supports them.
pub fn mdx_functions() -> Vec<MdxFunction> {
    use SupportCategory::*;
    let rows: [(&str, &str, SupportCategory); 38] = [
        ("Aggregate", "ASHE for Sum, Count; OPE for Max, Min", ServerOnly),
        ("Avg", "ASHE for Sum, Count; client does division", ServerOnly),
        ("CalculationCurrentPass", "Independent of Seabed", ServerOnly),
        ("CalculationPassValue", "Independent of Seabed", ServerOnly),
        ("CoalesceEmpty", "Extra counter with identity", ClientPreProcessing),
        (
            "Correlation",
            "ASHE & precomputation of XY; client does division",
            ClientPreProcessing,
        ),
        ("Count(Dimensions)", "Independent of Seabed", ServerOnly),
        ("Count(Hierarchy Levels)", "Independent of Seabed", ServerOnly),
        ("Count(Set)", "Using DET or SPLASHE", ServerOnly),
        ("Count(Tuple)", "Independent of Seabed", ServerOnly),
        ("Covariance", "Same as Correlation", ClientPreProcessing),
        ("CovarianceN", "Same as Correlation", ClientPreProcessing),
        ("DistinctCount", "Using DET or SPLASHE", ServerOnly),
        ("IIf", "Two values sent back to the client", ClientPostProcessing),
        (
            "LinRegIntercept",
            "Data sent back to client for every iteration",
            TwoRoundTrips,
        ),
        ("LinRegPoint", "Same as LinRegIntercept", TwoRoundTrips),
        ("LinRegR2", "Same as LinRegIntercept", TwoRoundTrips),
        ("LinRegSlope", "Same as LinRegIntercept", TwoRoundTrips),
        ("LinRegVariance", "Same as LinRegIntercept", TwoRoundTrips),
        (
            "LookupCube",
            "Data sent back to client for computation",
            ClientPostProcessing,
        ),
        ("Max", "Using OPE", ServerOnly),
        ("Median", "Using OPE", ServerOnly),
        ("Min", "Using OPE", ServerOnly),
        ("Ordinal", "Using OPE", ServerOnly),
        (
            "Predict",
            "Data sent back to client for computation",
            ClientPostProcessing,
        ),
        ("Rank", "Using OPE", ServerOnly),
        (
            "RollupChildren",
            "Data sent back to client for computation",
            ClientPostProcessing,
        ),
        (
            "Stddev",
            "ASHE when client uploads encrypted squares",
            ClientPreProcessing,
        ),
        ("StddevP", "Same as Stddev", ClientPreProcessing),
        ("Stdev", "Alias for Stddev", ClientPreProcessing),
        ("StdevP", "Alias for StddevP", ClientPreProcessing),
        ("StrToValue", "Independent of Seabed", ServerOnly),
        ("Sum", "Using ASHE", ServerOnly),
        ("Value", "Independent of Seabed", ServerOnly),
        ("Var", "Same as Stddev", ClientPreProcessing),
        ("Variance", "Alias for Var", ClientPreProcessing),
        ("VarianceP", "Alias for VarP", ClientPreProcessing),
        ("VarP", "Same as Stddev", ClientPreProcessing),
    ];
    rows.iter()
        .map(|(name, how, category)| MdxFunction {
            name,
            how,
            category: *category,
        })
        .collect()
}

/// Table 4's MDX row: category counts over the 38 MDX functions.
pub fn mdx_category_counts() -> CategoryCounts {
    let mut counts = CategoryCounts::default();
    for f in mdx_functions() {
        counts.add(f.category);
    }
    counts
}

/// A compact stand-in for the TPC-DS query set: 99 queries whose category
/// proportions follow Table 4 (69 server-only, 2 pre-processing, 25
/// post-processing, 3 two-round-trip).
pub fn tpcds_category_counts() -> CategoryCounts {
    CategoryCounts {
        server_only: 69,
        client_pre: 2,
        client_post: 25,
        two_round_trips: 3,
    }
}

/// Summary rows of Table 4 keyed by query-set name.
pub fn table4_rows(ad_analytics_counts: &CategoryCounts) -> BTreeMap<&'static str, CategoryCounts> {
    let mut rows = BTreeMap::new();
    rows.insert("Ad Analytics", ad_analytics_counts.clone());
    rows.insert("TPC-DS", tpcds_category_counts());
    rows.insert("MDX", mdx_category_counts());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_aggregations_are_server_only() {
        for sql in [
            "SELECT SUM(x) FROM t",
            "SELECT COUNT(*) FROM t WHERE a = 1",
            "SELECT AVG(x) FROM t",
            "SELECT g, MIN(x) FROM t GROUP BY g",
        ] {
            assert_eq!(
                classify_sql(sql),
                Some(seabed_query::SupportCategory::ServerOnly),
                "{sql}"
            );
        }
    }

    #[test]
    fn quadratic_aggregations_need_preprocessing() {
        assert_eq!(
            classify_sql("SELECT VARIANCE(x) FROM t"),
            Some(seabed_query::SupportCategory::ClientPreProcessing)
        );
        assert_eq!(
            classify_sql("SELECT STDDEV(x) FROM t"),
            Some(seabed_query::SupportCategory::ClientPreProcessing)
        );
    }

    #[test]
    fn unparseable_queries_fall_into_post_processing() {
        let counts = classify_set(["SELECT SUM(x) FROM t", "CALL custom_udf(everything)"]);
        assert_eq!(counts.server_only, 1);
        assert_eq!(counts.client_post, 1);
        assert_eq!(counts.total(), 2);
    }

    #[test]
    fn mdx_matrix_matches_table6_totals() {
        let functions = mdx_functions();
        assert_eq!(functions.len(), 38);
        let counts = mdx_category_counts();
        // Table 4's MDX row: 38 total, 17 server, 12 pre, 4 post, 5 two-round-trip.
        assert_eq!(counts.total(), 38);
        assert_eq!(counts.server_only, 17);
        assert_eq!(counts.client_pre, 12);
        assert_eq!(counts.client_post, 4);
        assert_eq!(counts.two_round_trips, 5);
    }

    #[test]
    fn tpcds_row_matches_table4() {
        let counts = tpcds_category_counts();
        assert_eq!(counts.total(), 99);
        assert_eq!(counts.server_only, 69);
    }

    #[test]
    fn ad_analytics_log_is_mostly_server_only() {
        let queries = crate::ad_analytics::query_log(&mut rand::rng(), 200);
        let counts = classify_set(queries.iter().map(|q| q.sql.as_str()));
        assert_eq!(counts.total(), 200);
        assert!(counts.server_fraction() > 0.75, "the paper reports ~80% server-only");
    }

    #[test]
    fn table4_has_three_rows() {
        let ada = CategoryCounts {
            server_only: 134_298,
            client_pre: 0,
            client_post: 34_054,
            two_round_trips: 0,
        };
        let rows = table4_rows(&ada);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows["Ad Analytics"].total(), 168_352);
    }
}
