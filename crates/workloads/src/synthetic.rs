//! Synthetic microbenchmark datasets (§6.1).
//!
//! The paper's microbenchmarks use a synthetic table with one integer measure
//! (plus the implicit ID column for ASHE), 250 million to 1.75 billion rows,
//! and a selectivity parameter that picks rows uniformly at random. This
//! module generates the same structure at a configurable scale; the benchmark
//! harness scales row counts down by a constant factor and reports the factor
//! in EXPERIMENTS.md.

use rand::Rng;

/// A synthetic microbenchmark dataset.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// The measure column values.
    pub values: Vec<u64>,
    /// An optional group-by column (used by the Figure 9a experiment).
    pub groups: Option<Vec<u64>>,
    /// An optional second integer column filtered with OPE (Figure 8c).
    pub ope_values: Option<Vec<u64>>,
}

impl SyntheticDataset {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.values.len()
    }
}

/// Generates the plain aggregation dataset: `rows` integer values.
pub fn aggregation_dataset<R: Rng + ?Sized>(rng: &mut R, rows: usize) -> SyntheticDataset {
    SyntheticDataset {
        values: (0..rows).map(|_| rng.random_range(0..1_000_000u64)).collect(),
        groups: None,
        ope_values: None,
    }
}

/// Generates the group-by dataset of §6.5: a measure plus a group column with
/// `num_groups` distinct values.
pub fn group_by_dataset<R: Rng + ?Sized>(rng: &mut R, rows: usize, num_groups: u64) -> SyntheticDataset {
    SyntheticDataset {
        values: (0..rows).map(|_| rng.random_range(0..1_000_000u64)).collect(),
        groups: Some((0..rows).map(|_| rng.random_range(0..num_groups.max(1))).collect()),
        ope_values: None,
    }
}

/// Generates the OPE-selection dataset of §6.4: a measure plus an integer
/// column used in range predicates.
pub fn ope_dataset<R: Rng + ?Sized>(rng: &mut R, rows: usize) -> SyntheticDataset {
    SyntheticDataset {
        values: (0..rows).map(|_| rng.random_range(0..1_000_000u64)).collect(),
        groups: None,
        ope_values: Some((0..rows).map(|_| rng.random_range(0..u32::MAX as u64)).collect()),
    }
}

/// The row counts (in millions) swept by Figure 6, before scaling.
pub const FIG6_ROWS_MILLIONS: [u64; 4] = [250, 750, 1250, 1750];

/// The worker counts swept by Figure 7.
pub const FIG7_WORKERS: [usize; 5] = [10, 25, 50, 75, 100];

/// The selectivities swept by Figure 8.
pub const FIG8_SELECTIVITIES: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// The group counts swept by Figure 9a.
pub const FIG9A_GROUPS: [u64; 4] = [10, 100, 10_000, 1_000_000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_dataset_shape() {
        let ds = aggregation_dataset(&mut rand::rng(), 1000);
        assert_eq!(ds.rows(), 1000);
        assert!(ds.groups.is_none());
        assert!(ds.values.iter().all(|&v| v < 1_000_000));
    }

    #[test]
    fn group_by_dataset_has_requested_cardinality() {
        let ds = group_by_dataset(&mut rand::rng(), 10_000, 16);
        let groups = ds.groups.unwrap();
        assert!(groups.iter().all(|&g| g < 16));
        let distinct: std::collections::HashSet<u64> = groups.into_iter().collect();
        assert_eq!(distinct.len(), 16, "all groups should be populated at this size");
    }

    #[test]
    fn ope_dataset_has_companion_column() {
        let ds = ope_dataset(&mut rand::rng(), 500);
        assert_eq!(ds.ope_values.unwrap().len(), 500);
    }
}
