//! Ad-Analytics workload generator (§6.6).
//!
//! The paper evaluates Seabed on a production advertising-analytics dataset:
//! 759 M rows, 33 dimensions, 18 measures, with a month-long log of 168,352
//! queries, all hour-of-day group-by aggregations producing between 1 and 12
//! groups. The production data is unavailable, so this generator reproduces
//! the workload's *shape*: the same column counts, Zipf-skewed dimension
//! cardinalities matching Figure 10b's x-axis, contiguous upload order (which
//! is what gives Seabed its small ID lists), and a query-log generator that
//! draws group counts from {1, 4, 8} the way the paper's performance
//! experiment does.

use rand::Rng;
use seabed_core::PlainDataset;
use seabed_splashe::DimensionProfile;

/// Number of dimension columns in the Ad-Analytics schema.
pub const NUM_DIMENSIONS: usize = 33;
/// Number of measure columns in the Ad-Analytics schema.
pub const NUM_MEASURES: usize = 18;
/// Number of dimensions the operators marked as sensitive (§6.6).
pub const SENSITIVE_DIMENSIONS: usize = 10;
/// Number of measures the operators marked as sensitive (§6.6).
pub const SENSITIVE_MEASURES: usize = 10;

/// Cardinality of dimension `i` (0-based): grows with the index so that the
/// Figure 10b curve sorted by cardinality is well defined.
pub fn dimension_cardinality(index: usize) -> usize {
    match index {
        0 => 2,   // e.g. gender
        1 => 5,   // device class
        2 => 12,  // hour of day bucket
        3 => 24,  // hour of day
        4 => 30,  // ad format
        5 => 50,  // campaign type
        6 => 80,  // region
        7 => 120, // market
        8 => 196, // country
        9 => 400, // advertiser segment
        _ => 50 + index * 37,
    }
}

/// Zipf-like distribution over `cardinality` values with total weight `total`.
pub fn zipf_distribution(cardinality: usize, total: u64) -> Vec<(String, u64)> {
    let h: f64 = (1..=cardinality).map(|i| 1.0 / i as f64).sum();
    (0..cardinality)
        .map(|i| {
            let weight = ((total as f64 / h) / (i + 1) as f64).max(1.0) as u64;
            (format!("v{i}"), weight)
        })
        .collect()
}

/// Generates the Ad-Analytics dataset with `rows` rows.
///
/// Dimension columns are named `dim00` … `dim32` (hour-of-day is `dim03`),
/// measures `measure00` … `measure17` (`measure00` is "revenue",
/// `measure01` is "clicks").
pub fn generate<R: Rng + ?Sized>(rng: &mut R, rows: usize) -> PlainDataset {
    let mut dataset = PlainDataset::new("ad_analytics");
    for d in 0..NUM_DIMENSIONS {
        let cardinality = dimension_cardinality(d);
        let dist = zipf_distribution(cardinality, rows as u64);
        let total: u64 = dist.iter().map(|(_, w)| *w).sum();
        let column: Vec<String> = (0..rows)
            .map(|_| {
                let mut target = rng.random_range(0..total.max(1));
                for (value, weight) in &dist {
                    if target < *weight {
                        return value.clone();
                    }
                    target -= weight;
                }
                dist.last().map(|(v, _)| v.clone()).unwrap_or_default()
            })
            .collect();
        dataset = dataset.with_text_column(&format!("dim{d:02}"), column);
    }
    // Hour-of-day as a numeric column too (the group-by key of the query log).
    dataset = dataset.with_uint_column("hour", (0..rows).map(|_| rng.random_range(0..24u64)).collect());
    for m in 0..NUM_MEASURES {
        let column: Vec<u64> = (0..rows).map(|_| rng.random_range(0..100_000u64)).collect();
        dataset = dataset.with_uint_column(&format!("measure{m:02}"), column);
    }
    dataset
}

/// Dimension profiles for the 10 sensitive dimensions, as the SPLASHE planner
/// consumes them (Figure 10b).
pub fn sensitive_dimension_profiles(rows: u64) -> Vec<DimensionProfile> {
    (0..SENSITIVE_DIMENSIONS)
        .map(|d| DimensionProfile {
            name: format!("dim{d:02}"),
            distribution: zipf_distribution(dimension_cardinality(d), rows),
            co_queried_measures: SENSITIVE_MEASURES,
        })
        .collect()
}

/// One query of the Ad-Analytics log.
#[derive(Clone, Debug)]
pub struct AdQuery {
    /// SQL text.
    pub sql: String,
    /// Number of hour-of-day groups the query restricts to (1–12).
    pub groups: usize,
}

/// Generates a query log in the style of §6.6: aggregations of a sensitive
/// measure grouped by hour-of-day, restricted to a window of `groups` hours.
pub fn query_log<R: Rng + ?Sized>(rng: &mut R, count: usize) -> Vec<AdQuery> {
    (0..count)
        .map(|_| {
            let groups = *[1usize, 4, 8].get(rng.random_range(0..3usize)).unwrap();
            let start = rng.random_range(0..(24 - groups) as u64);
            let measure = rng.random_range(0..SENSITIVE_MEASURES);
            let sql = format!(
                "SELECT hour, SUM(measure{measure:02}) FROM ad_analytics WHERE hour >= {start} AND hour < {} GROUP BY hour",
                start + groups as u64
            );
            AdQuery { sql, groups }
        })
        .collect()
}

/// The 15-query performance set of §6.6: five queries each for group sizes
/// 1, 4 and 8.
pub fn performance_query_set<R: Rng + ?Sized>(rng: &mut R) -> Vec<AdQuery> {
    let mut queries = Vec::new();
    for &groups in &[1usize, 4, 8] {
        for _ in 0..5 {
            let start = rng.random_range(0..(24 - groups) as u64);
            let measure = rng.random_range(0..2usize);
            queries.push(AdQuery {
                sql: format!(
                    "SELECT hour, SUM(measure{measure:02}) FROM ad_analytics WHERE hour >= {start} AND hour < {} GROUP BY hour",
                    start + groups as u64
                ),
                groups,
            });
        }
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use seabed_query::parse;

    #[test]
    fn schema_has_paper_column_counts() {
        let ds = generate(&mut rand::rng(), 200);
        let dims = ds.columns.iter().filter(|(n, _)| n.starts_with("dim")).count();
        let measures = ds.columns.iter().filter(|(n, _)| n.starts_with("measure")).count();
        assert_eq!(dims, NUM_DIMENSIONS);
        assert_eq!(measures, NUM_MEASURES);
        assert!(ds.column("hour").is_some());
        assert_eq!(ds.num_rows(), 200);
    }

    #[test]
    fn dimension_cardinalities_are_increasing() {
        let cards: Vec<usize> = (0..SENSITIVE_DIMENSIONS).map(dimension_cardinality).collect();
        assert!(cards.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cards[0], 2);
        assert_eq!(cards[8], 196, "the country-like dimension");
    }

    #[test]
    fn zipf_distribution_is_skewed() {
        let dist = zipf_distribution(100, 1_000_000);
        assert_eq!(dist.len(), 100);
        assert!(dist[0].1 > 10 * dist[99].1, "head should dominate tail");
    }

    #[test]
    fn query_log_parses_and_matches_group_counts() {
        let queries = query_log(&mut rand::rng(), 50);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert!(parse(&q.sql).is_ok(), "failed to parse {}", q.sql);
            assert!(q.groups >= 1 && q.groups <= 12);
        }
    }

    #[test]
    fn performance_set_has_15_queries() {
        let set = performance_query_set(&mut rand::rng());
        assert_eq!(set.len(), 15);
        assert_eq!(set.iter().filter(|q| q.groups == 1).count(), 5);
        assert_eq!(set.iter().filter(|q| q.groups == 4).count(), 5);
        assert_eq!(set.iter().filter(|q| q.groups == 8).count(), 5);
    }

    #[test]
    fn sensitive_profiles_match_figure10b_inputs() {
        let profiles = sensitive_dimension_profiles(10_000);
        assert_eq!(profiles.len(), SENSITIVE_DIMENSIONS);
        assert!(profiles.iter().all(|p| p.co_queried_measures == SENSITIVE_MEASURES));
    }
}
