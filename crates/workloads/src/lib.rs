//! # seabed-workloads
//!
//! Dataset and query-workload generators for reproducing the Seabed paper's
//! evaluation (§5–§6):
//!
//! * [`synthetic`] — the microbenchmark datasets and parameter sweeps behind
//!   Figures 6–9a (row counts, worker counts, selectivities, group counts);
//! * [`bdb`] — the AmpLab Big Data Benchmark tables and the ten queries of
//!   Figure 9b/c, with the paper's simplifications;
//! * [`ad_analytics`] — a synthetic stand-in for the production Ad-Analytics
//!   dataset (33 dimensions, 18 measures, Zipf-skewed cardinalities) and its
//!   hour-of-day query log (Figure 10, Table 4);
//! * [`classify`] — the query-support classifier behind Table 4 and the full
//!   MDX function matrix of Table 6.

#![warn(missing_docs)]

pub mod ad_analytics;
pub mod bdb;
pub mod classify;
pub mod synthetic;

pub use classify::{classify_query, classify_set, classify_sql, CategoryCounts, MdxFunction};
pub use synthetic::SyntheticDataset;

#[cfg(test)]
mod tests {
    #[test]
    fn dataset_types_compose_with_core() {
        let ds = seabed_core::PlainDataset::new("t").with_uint_column("x", vec![1, 2, 3]);
        assert_eq!(ds.num_rows(), 3);
    }
}
