//! AmpLab Big Data Benchmark generators and query set (§6.7).
//!
//! The benchmark has two base tables:
//!
//! * `rankings(pageURL, pageRank, avgDuration)` — 90 M rows in the paper;
//! * `uservisits(sourceIP, destURL, visitDate, adRevenue, countryCode,
//!   duration, …)` — 775 M rows in the paper;
//!
//! and four query families (scan, aggregation, join, external script). The
//! paper simplifies queries 2 and 4 (prefix matching via DET, external script
//! kept plaintext) and drops the final sort of query 3; this module generates
//! scaled-down tables with the same schema and expresses the queries in the
//! repo's SQL dialect with the same simplifications.

use rand::Rng;
use seabed_core::PlainDataset;

/// The scaled-down Big Data Benchmark tables.
#[derive(Clone, Debug)]
pub struct BdbTables {
    /// The rankings table.
    pub rankings: PlainDataset,
    /// The user-visits table.
    pub uservisits: PlainDataset,
}

/// Generates the Rankings table with `rows` rows.
pub fn rankings<R: Rng + ?Sized>(rng: &mut R, rows: usize) -> PlainDataset {
    let page_url: Vec<String> = (0..rows).map(|i| format!("url{i:09}")).collect();
    // pageRank follows a heavy-tailed distribution like real web graphs.
    let page_rank: Vec<u64> = (0..rows)
        .map(|_| {
            let r: f64 = rng.random::<f64>();
            ((1.0 / (1.0 - r * 0.9999)).powf(1.2)).min(100_000.0) as u64
        })
        .collect();
    let avg_duration: Vec<u64> = (0..rows).map(|_| rng.random_range(1..200u64)).collect();
    PlainDataset::new("rankings")
        .with_text_column("pageURL", page_url)
        .with_uint_column("pageRank", page_rank)
        .with_uint_column("avgDuration", avg_duration)
}

/// Generates the UserVisits table with `rows` rows referencing `url_count`
/// distinct destination URLs.
pub fn uservisits<R: Rng + ?Sized>(rng: &mut R, rows: usize, url_count: usize) -> PlainDataset {
    let source_ip: Vec<String> = (0..rows)
        .map(|_| {
            format!(
                "{}.{}.{}.{}",
                rng.random_range(1..255u8),
                rng.random_range(0..255u8),
                rng.random_range(0..255u8),
                rng.random_range(1..255u8)
            )
        })
        .collect();
    // Substring-prefix grouping (query 2) is simplified to the first octet.
    let ip_prefix: Vec<String> = source_ip
        .iter()
        .map(|ip| ip.split('.').next().unwrap().to_string())
        .collect();
    let dest_url: Vec<String> = (0..rows)
        .map(|_| format!("url{:09}", rng.random_range(0..url_count.max(1))))
        .collect();
    // visitDate as days since 1980-01-01; the paper's query 3 filters a range.
    let visit_date: Vec<u64> = (0..rows).map(|_| rng.random_range(0..15_000u64)).collect();
    let ad_revenue: Vec<u64> = (0..rows).map(|_| rng.random_range(1..10_000u64)).collect();
    let country_code: Vec<String> = (0..rows).map(|_| format!("C{}", rng.random_range(0..25u8))).collect();
    let duration: Vec<u64> = (0..rows).map(|_| rng.random_range(1..3_600u64)).collect();
    PlainDataset::new("uservisits")
        .with_text_column("sourceIP", source_ip)
        .with_text_column("ipPrefix", ip_prefix)
        .with_text_column("destURL", dest_url)
        .with_uint_column("visitDate", visit_date)
        .with_uint_column("adRevenue", ad_revenue)
        .with_text_column("countryCode", country_code)
        .with_uint_column("duration", duration)
}

/// Generates both tables at a scale factor: `scale` = fraction of a
/// million-row reference size.
pub fn generate<R: Rng + ?Sized>(rng: &mut R, rankings_rows: usize, uservisits_rows: usize) -> BdbTables {
    BdbTables {
        rankings: rankings(rng, rankings_rows),
        uservisits: uservisits(rng, uservisits_rows, rankings_rows.max(1)),
    }
}

/// One Big Data Benchmark query, expressed in the repo's dialect.
#[derive(Clone, Debug)]
pub struct BdbQuery {
    /// Query name as used in Figure 9b/c (e.g. "Q1A").
    pub name: &'static str,
    /// Which table it scans.
    pub table: &'static str,
    /// The SQL text.
    pub sql: String,
    /// Simplifications applied relative to the original benchmark, if any.
    pub notes: &'static str,
}

/// The ten queries of Figure 9b/c with the paper's simplifications.
pub fn queries() -> Vec<BdbQuery> {
    vec![
        BdbQuery {
            name: "Q1A",
            table: "rankings",
            sql: "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 1000".to_string(),
            notes: "scan query, no aggregation",
        },
        BdbQuery {
            name: "Q1B",
            table: "rankings",
            sql: "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100".to_string(),
            notes: "scan query, larger result",
        },
        BdbQuery {
            name: "Q1C",
            table: "rankings",
            sql: "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 10".to_string(),
            notes: "scan query, largest result",
        },
        BdbQuery {
            name: "Q2A",
            table: "uservisits",
            sql: "SELECT ipPrefix, SUM(adRevenue) FROM uservisits GROUP BY ipPrefix".to_string(),
            notes: "substring(sourceIP, 1, 8) simplified to a DET-encrypted prefix column, as in §6.7",
        },
        BdbQuery {
            name: "Q2B",
            table: "uservisits",
            sql: "SELECT ipPrefix, SUM(adRevenue) FROM uservisits WHERE visitDate >= 2000 GROUP BY ipPrefix".to_string(),
            notes: "prefix aggregation with a date filter",
        },
        BdbQuery {
            name: "Q2C",
            table: "uservisits",
            sql: "SELECT ipPrefix, SUM(adRevenue), AVG(duration) FROM uservisits GROUP BY ipPrefix".to_string(),
            notes: "prefix aggregation with two measures",
        },
        BdbQuery {
            name: "Q3A",
            table: "uservisits",
            sql: "SELECT destURL, SUM(adRevenue) FROM uservisits WHERE visitDate >= 1000 AND visitDate < 4000 GROUP BY destURL"
                .to_string(),
            notes: "join with rankings reduced to the revenue side; client-side sort omitted as in §6.7",
        },
        BdbQuery {
            name: "Q3B",
            table: "uservisits",
            sql: "SELECT destURL, SUM(adRevenue) FROM uservisits WHERE visitDate >= 1000 AND visitDate < 8000 GROUP BY destURL"
                .to_string(),
            notes: "wider date range",
        },
        BdbQuery {
            name: "Q3C",
            table: "uservisits",
            sql: "SELECT destURL, SUM(adRevenue) FROM uservisits WHERE visitDate >= 0 AND visitDate < 15000 GROUP BY destURL"
                .to_string(),
            notes: "widest date range",
        },
        BdbQuery {
            name: "Q4",
            table: "uservisits",
            sql: "SELECT countryCode, COUNT(*) FROM uservisits GROUP BY countryCode".to_string(),
            notes: "external-script phase kept plaintext as in §6.7; the aggregation phase is reproduced",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use seabed_query::parse;

    #[test]
    fn tables_have_expected_schema() {
        let tables = generate(&mut rand::rng(), 500, 2_000);
        assert_eq!(tables.rankings.num_rows(), 500);
        assert_eq!(tables.uservisits.num_rows(), 2_000);
        for col in ["pageURL", "pageRank", "avgDuration"] {
            assert!(tables.rankings.column(col).is_some(), "rankings missing {col}");
        }
        for col in [
            "sourceIP",
            "ipPrefix",
            "destURL",
            "visitDate",
            "adRevenue",
            "countryCode",
            "duration",
        ] {
            assert!(tables.uservisits.column(col).is_some(), "uservisits missing {col}");
        }
    }

    #[test]
    fn all_queries_parse() {
        for q in queries() {
            assert!(parse(&q.sql).is_ok(), "query {} failed to parse", q.name);
        }
        assert_eq!(queries().len(), 10, "ten queries as in the benchmark");
    }

    #[test]
    fn uservisits_references_rankings_urls() {
        let tables = generate(&mut rand::rng(), 100, 1_000);
        let urls: std::collections::HashSet<String> = (0..100).map(|i| format!("url{i:09}")).collect();
        let dest = tables.uservisits.column("destURL").unwrap();
        for i in 0..tables.uservisits.num_rows() {
            assert!(urls.contains(&dest.text_at(i)));
        }
    }

    #[test]
    fn page_rank_is_heavy_tailed() {
        let table = rankings(&mut rand::rng(), 20_000);
        let ranks: Vec<u64> = (0..table.num_rows())
            .map(|i| table.column("pageRank").unwrap().u64_at(i).unwrap())
            .collect();
        let over_1000 = ranks.iter().filter(|&&r| r > 1000).count();
        let over_10 = ranks.iter().filter(|&&r| r > 10).count();
        assert!(over_1000 < over_10, "selectivity must increase as the threshold drops");
        assert!(over_1000 > 0, "the tail should reach past 1000");
    }
}
