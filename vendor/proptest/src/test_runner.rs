//! The tiny deterministic runner backing the [`proptest!`](crate::proptest)
//! macro.

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be regenerated.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

/// Deterministic generator for test-case inputs (xoshiro256**, seeded from
/// the test name so every run of a given test replays the same cases).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut state = h;
        let mut s = [0u64; 4];
        for slot in &mut s {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            *slot = z ^ (z >> 31);
        }
        if s.iter().all(|&w| w == 0) {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }
}
