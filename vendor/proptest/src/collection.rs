//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = sample_len(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>` with a size drawn from `size` (duplicate
/// keys collapse, so the realized size may be smaller — same as proptest).
pub fn btree_map<K: Strategy, V: Strategy>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { keys, values, size }
}

/// Strategy returned by [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = sample_len(&self.size, rng);
        let mut out = BTreeMap::new();
        for _ in 0..len {
            out.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        out
    }
}

/// Strategy for `BTreeSet<T>` with a size drawn from `size` (duplicates
/// collapse, so the realized size may be smaller — same as proptest).
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let len = sample_len(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

fn sample_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(size.start < size.end, "empty collection size range");
    rng.usize_in(size.start, size.end)
}
