//! The [`Strategy`] trait, [`any`], range strategies, string-pattern
//! strategies and the `prop_map` combinator.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying a predicate (regenerating otherwise; the
    /// macro's rejection budget bounds the retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, reason }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive candidates", self.reason);
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as u64).wrapping_sub(self.start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: any word works.
                    rng.next_u64() as $t
                } else {
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        self.start + u128::arbitrary(rng) % span
    }
}

impl Strategy for RangeFrom<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        let span = u128::MAX - self.start;
        if span == u128::MAX {
            u128::arbitrary(rng)
        } else {
            self.start + u128::arbitrary(rng) % (span + 1)
        }
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + f64::arbitrary(rng) * (self.end - self.start)
    }
}

/// String-pattern strategies: a `&'static str` literal is interpreted as a
/// simplified regex — a sequence of atoms (`[class]`, `.`, or a literal
/// character), each optionally repeated with `{m,n}` / `{n}`. This covers the
/// patterns used in this workspace (identifier- and arbitrary-text shapes).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.min == atom.max {
                atom.min
            } else {
                rng.usize_in(atom.min, atom.max + 1)
            };
            for _ in 0..count {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

struct PatternAtom {
    choices: AtomChoices,
    min: usize,
    max: usize,
}

enum AtomChoices {
    /// Explicit character alternatives from a `[...]` class.
    Class(Vec<char>),
    /// `.`: any printable ASCII character.
    AnyPrintable,
}

impl PatternAtom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match &self.choices {
            AtomChoices::Class(chars) => chars[rng.usize_in(0, chars.len())],
            AtomChoices::AnyPrintable => (0x20u8 + rng.below(0x5f) as u8) as char,
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let mut class = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        for c in lo..=hi {
                            class.push(c);
                        }
                        j += 3;
                    } else {
                        class.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!class.is_empty(), "empty character class in pattern {pattern:?}");
                i = close + 1;
                AtomChoices::Class(class)
            }
            '.' => {
                i += 1;
                AtomChoices::AnyPrintable
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                AtomChoices::Class(vec![chars[i - 1]])
            }
            c => {
                i += 1;
                AtomChoices::Class(vec![c])
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().unwrap_or(0), hi.trim().parse().unwrap_or(0)),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom { choices, min, max });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_pattern_shapes() {
        let mut rng = TestRng::from_name("identifier_pattern_shapes");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().is_some_and(|c| c.is_ascii_lowercase()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn dot_pattern_is_printable_and_bounded() {
        let mut rng = TestRng::from_name("dot_pattern");
        for _ in 0..100 {
            let s = ".{0,200}".generate(&mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::from_name("ranges_and_maps");
        let strat = (5u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((10..20).contains(&v) && v % 2 == 0);
        }
    }
}
