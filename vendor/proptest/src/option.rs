//! Option strategies: `of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy generating `None` about a quarter of the time and `Some` of the
/// inner strategy otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 3 == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
