//! Offline mini re-implementation of the slice of `proptest` this workspace
//! uses: the `proptest!` macro, `prop_assert*` / `prop_assume!`, `any::<T>()`,
//! range and string-pattern strategies, `prop_map`, and the `collection` /
//! `option` strategy modules.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: no shrinking (failures report the raw case), a fixed deterministic
//! seed per test derived from the test name (runs are reproducible), and
//! string strategies support only the simple character-class patterns used in
//! this repository (e.g. `"[a-z][a-z0-9_]{0,8}"`, `".{0,200}"`).

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Strategy};
pub use test_runner::{TestCaseError, TestRng};

/// Everything the `proptest::prelude::*` glob import is expected to provide.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required before the test passes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Declares property tests. Mirrors real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                let mut __passed = 0u32;
                let mut __attempts = 0u32;
                let __max_attempts = __config.cases.saturating_mul(20).max(100);
                while __passed < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "proptest '{}': too many rejected cases ({} attempts for {} passes)",
                        stringify!($name), __attempts, __passed,
                    );
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!("proptest '{}' failed at case {}: {}", stringify!($name), __passed + 1, message);
                        }
                    }
                }
            }
        )*
    };
}

/// Rejects the current case (it is regenerated) when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(::std::string::String::from(stringify!(
                $cond
            ))));
        }
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?} ({})", l, r, format!($($fmt)+));
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}
