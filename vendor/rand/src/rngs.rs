//! Concrete generators: [`StdRng`] (seedable) and [`ThreadRng`] (ambient).

use crate::{splitmix64, RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// xoshiro256** core shared by both generators.
#[derive(Clone, Debug)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // All-zero state would be a fixed point; splitmix64 of any seed never
        // yields four zero words, but guard anyway.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9e3779b97f4a7c15;
        }
        Xoshiro256 { s }
    }

    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The standard seedable generator (stand-in for rand's `StdRng`).
#[derive(Clone, Debug)]
pub struct StdRng {
    core: Xoshiro256,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.core.next()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut words = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            words[i] = u64::from_le_bytes(buf);
        }
        let mut folded = 0u64;
        for w in words {
            folded = folded.rotate_left(17) ^ w;
        }
        StdRng {
            core: Xoshiro256::from_u64(folded),
        }
    }

    fn seed_from_u64(state: u64) -> Self {
        StdRng {
            core: Xoshiro256::from_u64(state),
        }
    }
}

/// An ambient generator freshly seeded per [`crate::rng()`] call from the
/// wall clock and a process-wide counter (stand-in for rand's `ThreadRng`).
#[derive(Clone, Debug)]
pub struct ThreadRng {
    core: Xoshiro256,
}

impl ThreadRng {
    pub(crate) fn fresh() -> ThreadRng {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        let unique = COUNTER.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed);
        ThreadRng {
            core: Xoshiro256::from_u64(nanos ^ unique.rotate_left(32)),
        }
    }
}

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.core.next()
    }
}
