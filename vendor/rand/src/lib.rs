//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the (small) slice of the rand 0.9 API the workspace uses:
//! [`rng()`], the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits,
//! [`rngs::StdRng`], [`rngs::ThreadRng`] and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256** seeded via SplitMix64 — statistically solid
//! for simulations and property tests, and explicitly NOT a cryptographic
//! RNG. Security-sensitive randomness in this workspace (Paillier blinding,
//! key generation) flows through caller-provided generators, so swapping in
//! the real `rand`/`getrandom` later is a manifest-only change.

pub mod rngs;
pub mod seq;

use std::ops::Range;

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range. Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Fills a byte slice with random data (rand's `Fill`-based `fill`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution (`rng.random::<T>()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: Standard + Default + Copy, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::sample(rng);
        }
        out
    }
}

/// Types uniformly samplable from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value from `range`. Panics if `range` is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_via_u64 {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Lemire's widening-multiply bounded sampler (no rejection loop
                // needed at the bias levels simulations tolerate).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_via_u64!(u8, u16, u32, u64, usize);

impl SampleUniform for i64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start.wrapping_add(hi as i64)
    }
}

impl SampleUniform for u128 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = range.end - range.start;
        range.start + u128::sample(rng) % span
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Returns a cheap thread-local-seeded generator (rand 0.9's `rand::rng()`).
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng::fresh()
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
