//! Offline mini stand-in for `criterion`.
//!
//! Provides [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a simple
//! warmup-then-median-of-samples loop: far less rigorous than real criterion,
//! but it produces stable relative numbers and keeps `cargo bench` runnable
//! without registry access. Each benchmark prints one line:
//!
//! ```text
//! bench: <group>/<id>  median 1.234 us/iter (31 samples x 1000 iters)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and an input description.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { text: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { text: s }
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, recorded by `iter`.
    pub(crate) median_ns: f64,
    pub(crate) iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: find an iteration count that takes ≥ ~200 us.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
        self.iters_per_sample = iters;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            median_ns: 0.0,
            iters_per_sample: 0,
        };
        f(&mut bencher);
        report(&self.name, &id.text, &bencher);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            median_ns: 0.0,
            iters_per_sample: 0,
        };
        f(&mut bencher, input);
        report(&self.name, &id.text, &bencher);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, bencher: &Bencher) {
    let ns = bencher.median_ns;
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "us")
    } else {
        (ns, "ns")
    };
    println!(
        "bench: {group}/{id}  median {value:.3} {unit}/iter ({} samples x {} iters)",
        bencher.samples_display(),
        bencher.iters_per_sample
    );
}

impl Bencher {
    fn samples_display(&self) -> usize {
        self.samples
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 11,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
