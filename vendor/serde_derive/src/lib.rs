//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace annotates its wire-facing types with serde derives so that a
//! real serde can be dropped in once the build environment has registry
//! access. Until then these derives expand to nothing: the annotations parse
//! and compile, and no code in the workspace currently calls serialization.

use proc_macro::TokenStream;

/// Expands `#[derive(Serialize)]` to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands `#[derive(Deserialize)]` to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
