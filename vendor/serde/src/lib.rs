//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op [`serde_derive`] macros so `use serde::{Serialize,
//! Deserialize}` and `#[derive(Serialize, Deserialize)]` compile without
//! registry access. The marker traits below occupy the type namespace (the
//! derives occupy the macro namespace), mirroring real serde's layout, so
//! swapping the real crate back in is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
