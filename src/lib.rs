//! # seabed
//!
//! Umbrella crate of the Seabed reproduction (Papadimitriou et al., OSDI
//! 2016): re-exports every layer under one roof and hosts the workspace-level
//! integration tests (`tests/`) and runnable walkthroughs (`examples/`).
//!
//! The layers, bottom to top:
//!
//! * [`error`] — the unified [`error::SeabedError`] spine;
//! * [`crypto`] — AES, SHA-256/HMAC, Paillier, DET, ORE, big integers;
//! * [`encoding`] — ID-list encodings, bitmaps, DEFLATE;
//! * [`ashe`] — the additively symmetric homomorphic encryption scheme;
//! * [`splashe`] — splayed aggregation over low-cardinality dimensions;
//! * [`engine`] — the partitioned columnar engine and cluster cost model;
//! * [`query`] — SQL dialect, data planner, query translator;
//! * [`core`] — client proxy, untrusted server, baselines;
//! * [`obs`] — unified metrics registry (counters, gauges, log-bucket
//!   latency histograms) and end-to-end query tracing;
//! * [`net`] — wire protocol + concurrent TCP service layer (the proxy ↔
//!   server boundary as a real socket);
//! * [`dist`] — sharded scatter/gather execution: a coordinator fanning
//!   encrypted queries out across networked workers and merging their
//!   partial results;
//! * [`workloads`] — synthetic, BDB and Ad-Analytics workload generators.

#![warn(missing_docs)]

pub use seabed_ashe as ashe;
pub use seabed_core as core;
pub use seabed_crypto as crypto;
pub use seabed_dist as dist;
pub use seabed_encoding as encoding;
pub use seabed_engine as engine;
pub use seabed_error as error;
pub use seabed_net as net;
pub use seabed_obs as obs;
pub use seabed_query as query;
pub use seabed_splashe as splashe;
pub use seabed_workloads as workloads;

pub use seabed_error::SeabedError;
