//! Shows how the Seabed planner budgets SPLASHE storage across dimensions
//! (Figure 10(b) of the paper).
//!
//! Run with: `cargo run -p seabed-core --release --example splashe_planning`

use seabed_splashe::{overhead_curve, plan_under_budget, DimensionDecision};
use seabed_workloads::ad_analytics;

fn main() {
    let rows = 1_000_000u64;
    let profiles = ad_analytics::sensitive_dimension_profiles(rows);
    let total_columns = ad_analytics::NUM_DIMENSIONS + ad_analytics::NUM_MEASURES;

    println!("Cumulative storage overhead (sorted by cardinality):");
    println!(
        "{:<12} {:>6} {:>16} {:>18}",
        "dimension", "card.", "basic SPLASHE x", "enhanced SPLASHE x"
    );
    for point in overhead_curve(&profiles, total_columns) {
        println!(
            "{:<12} {:>6} {:>16.2} {:>18.2}",
            point.name, point.cardinality, point.cumulative_basic, point.cumulative_enhanced
        );
    }

    for budget in [2.0, 3.0, 10.0] {
        let decisions = plan_under_budget(&profiles, total_columns, budget, true);
        let protected = decisions
            .iter()
            .filter(|(_, d)| !matches!(d, DimensionDecision::DeterministicFallback))
            .count();
        println!(
            "\nWith a {budget}x storage budget, enhanced SPLASHE protects {protected} of {} sensitive dimensions:",
            profiles.len()
        );
        for (name, decision) in &decisions {
            match decision {
                DimensionDecision::EnhancedSplashe { plan, factor } => {
                    println!("  {name:<8} enhanced SPLASHE (k={}, {:.2}x)", plan.k(), factor)
                }
                DimensionDecision::BasicSplashe { factor } => println!("  {name:<8} basic SPLASHE ({factor:.2}x)"),
                DimensionDecision::DeterministicFallback => println!("  {name:<8} DET fallback (frequency leakage!)"),
            }
        }
    }
}
