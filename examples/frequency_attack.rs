//! Demonstrates the frequency attack on deterministic encryption and how
//! SPLASHE's balanced columns defeat it (§3.3–3.4 of the paper).
//!
//! Run with: `cargo run -p seabed-core --release --example frequency_attack`

use seabed_crypto::DetScheme;
use seabed_splashe::{frequency_attack, plan_enhanced, AuxiliaryDistribution, EnhancedSplashe};
use std::collections::HashMap;

fn main() {
    // A skewed population of countries, as in the paper's motivating example.
    let population: Vec<(&str, usize)> = vec![
        ("USA", 5000),
        ("Canada", 2500),
        ("India", 900),
        ("Chile", 350),
        ("Iraq", 150),
        ("Japan", 100),
    ];
    let mut rows: Vec<(String, u64)> = Vec::new();
    for (country, count) in &population {
        for i in 0..*count {
            rows.push((country.to_string(), (i % 97) as u64));
        }
    }
    let truth: Vec<String> = rows.iter().map(|(c, _)| c.clone()).collect();
    let aux = AuxiliaryDistribution::from_counts(population.iter().map(|(c, n)| (*c, *n as u64)));

    // 1. Deterministic encryption: the attacker matches frequency ranks.
    let det = DetScheme::new(&[1u8; 32]);
    let det_column: Vec<u64> = truth.iter().map(|c| det.tag64_of(c.as_bytes())).collect();
    let det_result = frequency_attack(&det_column, &aux, &truth);
    println!(
        "DET column:     attacker recovers {:.1}% of rows ({}/{} values)",
        det_result.row_recovery_rate() * 100.0,
        det_result.values_recovered,
        det_result.values_total
    );

    // 2. Enhanced SPLASHE: the balanced DET column hides the skew.
    let mut distribution: HashMap<String, u64> = HashMap::new();
    for (c, _) in &rows {
        *distribution.entry(c.clone()).or_insert(0) += 1;
    }
    let plan = plan_enhanced(&distribution.into_iter().collect::<Vec<_>>());
    println!(
        "SPLASHE plan:   {} frequent value(s) splayed, {} infrequent behind the balanced column",
        plan.k(),
        plan.c()
    );
    let keys: Vec<[u8; 16]> = (0..plan.k() + 1).map(|i| [i as u8 + 1; 16]).collect();
    let splashe = EnhancedSplashe::new(plan, &[2u8; 32], keys);
    let cols = splashe.encode_rows(&rows, 0, &mut rand::rng());
    let splashe_result = frequency_attack(&cols.det_column, &aux, &truth);
    println!(
        "SPLASHE column: attacker recovers {:.1}% of rows",
        splashe_result.row_recovery_rate() * 100.0
    );

    // 3. Aggregates still work on the protected representation.
    let usa: u64 = rows.iter().filter(|(c, _)| c == "USA").map(|(_, m)| m).sum();
    assert_eq!(splashe.sum_where(&cols, "USA"), Some(usa));
    println!("SUM(measure) WHERE country = 'USA' still answers correctly: {usa}");
}
