//! Quickstart: plan, encrypt, upload and query a small dataset with Seabed —
//! through the session API: a [`Catalog`] of encrypted tables, a
//! [`SeabedSession`] over an execution target, and prepared, parameterized
//! statements.
//!
//! Run with: `cargo run -p seabed-core --release --example quickstart`

use seabed_core::{Catalog, PlainDataset, SeabedClient, SeabedServer, SeabedSession};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_query::{parse, ColumnSpec, Literal, PlannerConfig};

fn main() {
    // 1. The data collector's plaintext table.
    let countries: Vec<String> = ["USA", "USA", "Canada", "India", "USA", "Canada", "Chile", "India"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let data = PlainDataset::new("sales")
        .with_text_column("country", countries)
        .with_uint_column("revenue", vec![120, 80, 200, 40, 160, 90, 30, 55])
        .with_uint_column("year", vec![2014, 2015, 2015, 2016, 2016, 2016, 2016, 2016]);

    // 2. Create the plan: country is a sensitive dimension with a known
    //    distribution (so it gets enhanced SPLASHE), revenue a sensitive
    //    measure (ASHE), year a range-filtered dimension (OPE).
    let columns = vec![
        ColumnSpec::sensitive_with_distribution("country", data.distribution("country").unwrap()),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("year"),
    ];
    let samples = vec![
        parse("SELECT SUM(revenue) FROM sales WHERE country = 'USA'").unwrap(),
        parse("SELECT SUM(revenue) FROM sales WHERE year >= 2015").unwrap(),
        parse("SELECT AVG(revenue) FROM sales").unwrap(),
    ];
    let mut client = SeabedClient::create_plan(b"tenant-master-key", &columns, &samples, &PlannerConfig::default());
    println!("Schema plan:");
    for col in &client.plan().columns {
        println!("  {:<10} {:?} -> {:?}", col.name, col.role, col.encryption);
    }

    // 3. Encrypt and upload; stand up the (untrusted) server.
    let encrypted = client.encrypt_dataset(&data, 4, &mut rand::rng());
    println!("\nEncrypted physical columns:");
    for field in &encrypted.table.schema.fields {
        println!("  {}", field.name);
    }
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));

    // 4. Open a session: the catalog registers the table's proxy state (plan,
    //    keys, DET dictionaries) under its name; the session resolves every
    //    query's FROM against it and caches prepared statements.
    let catalog = Catalog::new().with_table("sales", client);
    let session = SeabedSession::new(catalog, &server);

    // 5. One-shot style through the session (prepare + execute in one call;
    //    the statement cache absorbs repeats).
    for sql in [
        "SELECT SUM(revenue) FROM sales",
        "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
        "SELECT AVG(revenue) FROM sales",
    ] {
        let result = session.query(sql, &[]).expect("query failed");
        println!(
            "\n{sql}\n  -> {:?}  (server {:?}, client {:?})",
            result.rows, result.timings.server, result.timings.client
        );
    }

    // 6. Prepared, parameterized execution: parse/plan/translate happen once;
    //    each execute binds the `?` literals, encrypts only those, and ships.
    let prepared = session
        .prepare("SELECT COUNT(*) FROM sales WHERE year >= ?")
        .expect("prepare failed");
    println!(
        "\nprepared: {} ({} parameter(s))",
        prepared.sql(),
        prepared.param_count()
    );
    for year in [2014u64, 2015, 2016] {
        let result = session
            .execute(&prepared, &[Literal::Integer(year)])
            .expect("execute failed");
        println!("  year >= {year} -> {:?}", result.rows);
    }
    let stats = session.stats();
    println!(
        "\nsession: {} statement(s) prepared, {} cache hit(s), {} execution(s)",
        stats.statements_prepared, stats.cache_hits, stats.executes
    );
}
