//! Quickstart: plan, encrypt, upload and query a small dataset with Seabed.
//!
//! Run with: `cargo run -p seabed-core --release --example quickstart`

use seabed_core::{PlainDataset, SeabedClient, SeabedServer};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_query::{parse, ColumnSpec, PlannerConfig};

fn main() {
    // 1. The data collector's plaintext table.
    let countries: Vec<String> = ["USA", "USA", "Canada", "India", "USA", "Canada", "Chile", "India"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let data = PlainDataset::new("sales")
        .with_text_column("country", countries)
        .with_uint_column("revenue", vec![120, 80, 200, 40, 160, 90, 30, 55])
        .with_uint_column("year", vec![2014, 2015, 2015, 2016, 2016, 2016, 2016, 2016]);

    // 2. Create the plan: country is a sensitive dimension with a known
    //    distribution (so it gets enhanced SPLASHE), revenue a sensitive
    //    measure (ASHE), year a range-filtered dimension (OPE).
    let columns = vec![
        ColumnSpec::sensitive_with_distribution("country", data.distribution("country").unwrap()),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("year"),
    ];
    let samples = vec![
        parse("SELECT SUM(revenue) FROM sales WHERE country = 'USA'").unwrap(),
        parse("SELECT SUM(revenue) FROM sales WHERE year >= 2015").unwrap(),
        parse("SELECT AVG(revenue) FROM sales").unwrap(),
    ];
    let mut client = SeabedClient::create_plan(b"tenant-master-key", &columns, &samples, &PlannerConfig::default());
    println!("Schema plan:");
    for col in &client.plan().columns {
        println!("  {:<10} {:?} -> {:?}", col.name, col.role, col.encryption);
    }

    // 3. Encrypt and upload; stand up the (untrusted) server.
    let encrypted = client.encrypt_dataset(&data, 4, &mut rand::rng());
    println!("\nEncrypted physical columns:");
    for field in &encrypted.table.schema.fields {
        println!("  {}", field.name);
    }
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));

    // 4. Ask questions in plain SQL; the proxy translates, the server computes
    //    on ciphertexts, the proxy decrypts.
    for sql in [
        "SELECT SUM(revenue) FROM sales",
        "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
        "SELECT SUM(revenue) FROM sales WHERE country = 'India'",
        "SELECT COUNT(*) FROM sales WHERE year >= 2016",
        "SELECT AVG(revenue) FROM sales",
    ] {
        let result = client.query(&server, sql).expect("query failed");
        println!(
            "\n{sql}\n  -> {:?}  (server {:?}, client {:?})",
            result.rows, result.timings.server, result.timings.client
        );
    }
}
