//! The encrypted server as a real networked service: spin up a
//! [`seabed_net::NetServer`] on an ephemeral port, connect several
//! [`seabed_net::RemoteSeabedClient`]s concurrently, and run queries through
//! real encryption end to end — only ciphertexts cross the socket.
//!
//! Run with: `cargo run --release --example remote_service`

use seabed_core::{PlainDataset, SeabedClient, SeabedServer};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_net::{NetServer, RemoteSeabedClient, ServiceConfig};
use seabed_query::{parse, ColumnSpec, PlannerConfig};

fn main() {
    // 1. The data collector's plaintext table, planned and encrypted exactly
    //    as in the quickstart.
    let n = 10_000usize;
    let countries = ["USA", "USA", "Canada", "India", "USA", "Canada", "Chile", "India"];
    let data = PlainDataset::new("sales")
        .with_text_column(
            "country",
            (0..n).map(|i| countries[i % countries.len()].to_string()).collect(),
        )
        .with_uint_column("revenue", (0..n as u64).map(|i| (i * 13) % 500).collect())
        .with_uint_column("year", (0..n as u64).map(|i| 2014 + i % 3).collect());
    let columns = vec![
        ColumnSpec::sensitive_with_distribution("country", data.distribution("country").expect("column exists")),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("year"),
    ];
    let samples = vec![
        parse("SELECT SUM(revenue) FROM sales WHERE country = 'USA'").expect("sample"),
        parse("SELECT SUM(revenue) FROM sales WHERE year >= 2015").expect("sample"),
        parse("SELECT AVG(revenue) FROM sales").expect("sample"),
    ];
    let mut client = SeabedClient::create_plan(b"tenant-master-key", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&data, 8, &mut rand::rng());

    // 2. Host the untrusted server behind a TCP socket. Port 0 picks an
    //    ephemeral port; worker_threads bounds simultaneous connections.
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
    let net = NetServer::serve(server, "127.0.0.1:0", ServiceConfig::default().worker_threads(8)).expect("serve");
    println!("Seabed service listening on {}", net.local_addr());

    // 3. N concurrent analyst proxies, each with its own connection, each
    //    running the full pipeline: translate, encrypt literals, ship the
    //    request frame, decrypt the response frame.
    let queries = [
        "SELECT SUM(revenue) FROM sales",
        "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
        "SELECT COUNT(*) FROM sales WHERE year >= 2016",
        "SELECT AVG(revenue) FROM sales",
    ];
    let addr = net.local_addr();
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let proxy = client.clone();
            scope.spawn(move || {
                let remote = RemoteSeabedClient::connect(addr, proxy).expect("connect");
                for (i, sql) in queries.iter().enumerate() {
                    let result = remote.query(sql).expect("remote query");
                    if worker == 0 {
                        println!("\n{sql}\n  -> {:?}", result.rows);
                    }
                    let _ = i;
                }
                let wire = remote.wire_stats();
                println!(
                    "client {worker}: {} requests, {} B sent, {} B received",
                    wire.requests, wire.bytes_sent, wire.bytes_received
                );
            });
        }
    });

    // 4. Graceful shutdown returns the aggregate service accounting.
    let stats = net.shutdown();
    println!(
        "\nservice totals: {} connections, {} requests, {} B in, {} B out",
        stats.connections, stats.requests_served, stats.bytes_in, stats.bytes_out
    );
}
