//! Live observability tour: run a small sharded cluster, trace one query
//! end-to-end, and scrape a worker's metrics over the wire mid-flight.
//!
//! Demonstrates the `seabed-obs` layer across every component:
//!
//! 1. a [`seabed_core::SeabedSession`] sharing one registry with its
//!    [`seabed_dist::DistCoordinator`], so `query_traced` yields a single
//!    `TraceId` whose stitched spans cover parse → translate →
//!    encrypt-filters → dispatch → scatter → shard-execute → gather →
//!    merge → decrypt;
//! 2. a remote scrape ([`seabed_net::scrape_metrics`], wire kinds 17/18) of
//!    a live worker: counters, log-bucket latency histograms with p50/p99,
//!    and the worker's own trace ring carrying the propagated id;
//! 3. both exposition formats (JSON and Prometheus) — note that nothing in
//!    either ever contains a plaintext query literal.
//!
//! Run with: `cargo run --release --example observability`
//!
//! (CI archives a scraped snapshot the same way during the `--smoke net_qps`
//! run — see `exp_net_qps` and `SEABED_METRICS_SNAPSHOT`.)

use std::time::Duration;

use seabed_core::{PlainDataset, SeabedClient, SeabedSession};
use seabed_dist::{spawn_worker, DistConfig, DistCoordinator};
use seabed_net::{scrape_metrics, ServiceConfig};
use seabed_query::{parse, ColumnSpec, PlannerConfig};

fn main() {
    let mut rng = rand::rng();

    // 1. A sales table, planned and encrypted client-side.
    let n = 12_000usize;
    let countries = ["USA", "USA", "Canada", "India", "USA", "Chile"];
    let sales = PlainDataset::new("sales")
        .with_text_column(
            "country",
            (0..n).map(|i| countries[i % countries.len()].to_string()).collect(),
        )
        .with_uint_column("revenue", (0..n as u64).map(|i| (i * 13) % 1_000).collect());
    let specs = vec![
        ColumnSpec::sensitive_with_distribution("country", sales.distribution("country").expect("column exists")),
        ColumnSpec::sensitive("revenue"),
    ];
    let samples = vec![
        parse("SELECT SUM(revenue) FROM sales WHERE country = 'USA'").expect("sample"),
        parse("SELECT SUM(revenue) FROM sales").expect("sample"),
    ];
    let mut client = SeabedClient::create_plan(b"obs-demo-key", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&sales, 12, &mut rng);

    // 2. Three workers on ephemeral ports, one coordinator, one session. The
    //    session adopts the coordinator's registry so every component's
    //    spans land in the same trace ring.
    let workers: Vec<_> = (0..3)
        .map(|i| {
            let w = spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker must start");
            println!("worker {i} listening on {}", w.local_addr());
            w
        })
        .collect();
    let addrs: Vec<_> = workers.iter().map(|w| w.local_addr()).collect();
    let coordinator =
        DistCoordinator::connect(&addrs, encrypted.table.clone(), DistConfig::default()).expect("coordinator connects");
    let session = SeabedSession::single("sales", client, &coordinator).with_obs(coordinator.registry());

    // 3. A few queries to warm the histograms, then one traced query.
    for _ in 0..4 {
        session
            .query("SELECT SUM(revenue) FROM sales", &[])
            .expect("warm-up query");
    }
    let sql = "SELECT SUM(revenue) FROM sales WHERE country = 'USA'";
    let (result, trace_id) = session.query_traced(sql, &[]).expect("traced query");
    println!("\n{sql}\n  -> {:?} (trace id {trace_id:#018x})", result.rows);

    // 3b. EXPLAIN ANALYZE the same query: the structural plan annotated with
    //     measured per-operator profiles, with the coordinator's stitched
    //     scatter / per-shard / gather / merge subtree hanging underneath.
    let explanation = session
        .explain(&format!("EXPLAIN ANALYZE {sql}"), &[])
        .expect("explain analyze");
    println!("\nEXPLAIN ANALYZE {sql}\n{}", explanation.render());

    // 4. The stitched end-to-end timeline: session spans + coordinator spans
    //    under the one propagated id.
    let merged = session.registry().merged_trace(trace_id).expect("trace recorded");
    println!("\ntimeline across [{}]:", merged.node);
    for span in &merged.spans {
        println!(
            "  {:>16}  +{:>9.3} ms  ({:.3} ms)",
            span.name,
            span.start_ns as f64 / 1e6,
            span.duration_ns as f64 / 1e6
        );
    }

    // 5. Scrape a live worker over the wire (kinds 17/18): its counters and
    //    shard-execute latency histogram, plus its trace ring — the same
    //    trace id shows up server-side.
    let (snapshot, traces, events) =
        scrape_metrics(addrs[0], true, true, Duration::from_secs(5)).expect("worker scrape");
    println!("\nscraped worker {}:", addrs[0]);
    if let Some(h) = snapshot.histogram("shard_execute_ns") {
        println!(
            "  shard_execute_ns: count={} p50={:.3} ms p99={:.3} ms max={:.3} ms",
            h.count,
            h.p50() as f64 / 1e6,
            h.p99() as f64 / 1e6,
            h.max as f64 / 1e6
        );
    }
    for name in ["net_requests_served", "net_bytes_in", "net_bytes_out"] {
        println!("  {name}: {}", snapshot.counter(name).unwrap_or(0));
    }
    let propagated = traces.iter().filter(|t| t.trace_id == trace_id).count();
    println!("  trace ring: {} trace(s), {propagated} carrying our id", traces.len());
    println!("  event ring: {} event(s)", events.len());
    if let Some(event) = events.last() {
        println!(
            "  last event: node={} outcome={} slow={} total={:.3} ms ({} operator rows)",
            event.node,
            event.outcome,
            event.slow,
            event.total_ns as f64 / 1e6,
            event.operators.len()
        );
    }

    // 6. Both exposition formats. Everything here is metric names, span
    //    names and numbers — never a plaintext literal like 'USA'.
    println!("\nPrometheus exposition (excerpt):");
    for line in snapshot.to_prometheus().lines().take(12) {
        println!("  {line}");
    }
    println!("\nJSON exposition: {} bytes", snapshot.to_json().len());

    // 7. Coordinator-side counters from the shared registry.
    let local = session.registry().snapshot();
    println!("\ncoordinator metrics:");
    for name in ["dist_cache_hits", "dist_cache_misses", "dist_hedged_reads"] {
        println!("  {name}: {}", local.counter(name).unwrap_or(0));
    }
    if let Some(h) = local.histogram("dist_scatter_ns") {
        println!(
            "  dist_scatter_ns: count={} p50={:.3} ms",
            h.count,
            h.p50() as f64 / 1e6
        );
    }

    drop(session);
    drop(coordinator);
    for w in workers {
        w.shutdown();
    }
}
