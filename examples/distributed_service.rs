//! Sharded scatter/gather across real workers: spin up four
//! [`seabed_net::NetServer`] worker services on ephemeral ports, shard an
//! encrypted Ad-Analytics fact table across them with a
//! [`seabed_dist::DistCoordinator`], and run the hourly-aggregation workload
//! through the coordinator — the client proxy uses the exact same
//! `prepare`/`query`/`decrypt_response` surface it would use against one
//! in-process server, and only ciphertexts ever cross the sockets.
//!
//! Run with: `cargo run --release --example distributed_service`

use seabed_core::SeabedClient;
use seabed_dist::{spawn_worker, DistConfig, DistCoordinator};
use seabed_net::ServiceConfig;
use seabed_query::{parse, ColumnSpec, PlannerConfig};
use seabed_workloads::ad_analytics;

fn main() {
    // 1. The data collector's plaintext fact table, planned and encrypted:
    //    the two measures are ASHE columns, dimensions stay public.
    let mut rng = rand::rng();
    let dataset = ad_analytics::generate(&mut rng, 20_000);
    let queries = ad_analytics::performance_query_set(&mut rng);
    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if n == "measure00" || n == "measure01" {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let samples: Vec<_> = queries.iter().map(|q| parse(&q.sql).expect("sample")).collect();
    let mut client = SeabedClient::create_plan(b"tenant-master-key", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 16, &mut rng);

    // 2. Four untrusted workers on ephemeral ports. Each starts empty; the
    //    coordinator assigns encrypted shards under a fresh epoch.
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let w = spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker must start");
            println!("worker {i} listening on {}", w.local_addr());
            w
        })
        .collect();
    let addrs: Vec<_> = workers.iter().map(|w| w.local_addr()).collect();
    let coordinator = DistCoordinator::connect(&addrs, encrypted.table.clone(), DistConfig::default())
        .expect("coordinator must connect");
    println!(
        "coordinator: epoch {}, {} shards across {} workers\n",
        coordinator.epoch(),
        coordinator.num_shards(),
        addrs.len()
    );

    // 3. The ad-analytics workload through the coordinator — same client
    //    surface as the single-server path.
    for q in queries.iter().take(5) {
        let result = client.query(&coordinator, &q.sql).expect("distributed query");
        let report = coordinator.last_report();
        println!("{}", q.sql);
        println!(
            "  -> {} group(s), scatter/gather {:.2} ms over {} shard quer{}",
            result.rows.len(),
            report.wall_time.as_secs_f64() * 1e3,
            report.runs.len(),
            if report.runs.len() == 1 { "y" } else { "ies" }
        );
    }

    // 4. Per-worker accounting: shards held, queries answered, wire traffic.
    println!("\nper-worker stats:");
    for summary in coordinator.worker_summaries() {
        println!(
            "  {} alive={} shards={:?} queries={} sent={}B received={}B",
            summary.label, summary.alive, summary.shards, summary.queries, summary.bytes_sent, summary.bytes_received
        );
    }

    drop(coordinator);
    for w in workers {
        let stats = w.shutdown();
        println!(
            "worker closed: {} connections, {} requests, {} B in, {} B out",
            stats.connections, stats.requests_served, stats.bytes_in, stats.bytes_out
        );
    }
}
