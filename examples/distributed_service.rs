//! Multi-tenant sharded scatter/gather across real workers: spin up four
//! [`seabed_net::NetServer`] worker services on ephemeral ports, shard TWO
//! encrypted tables — the Ad-Analytics fact table and a sales table — across
//! the same pool with one [`seabed_dist::DistCoordinator`], and drive both
//! through a multi-table [`seabed_core::SeabedSession`]: queries route by
//! their `FROM` name, prepared statements bind `?` parameters per execution,
//! and only ciphertexts ever cross the sockets.
//!
//! Run with: `cargo run --release --example distributed_service`

use seabed_core::{Catalog, PlainDataset, SeabedClient, SeabedSession};
use seabed_dist::{spawn_worker, DistConfig, DistCoordinator};
use seabed_net::ServiceConfig;
use seabed_query::{parse, ColumnSpec, Literal, PlannerConfig};
use seabed_workloads::ad_analytics;

fn main() {
    let mut rng = rand::rng();

    // 1. Tenant A: the Ad-Analytics fact table (two ASHE measures, public
    //    dimensions), planned and encrypted.
    let ada = ad_analytics::generate(&mut rng, 20_000);
    let ada_queries = ad_analytics::performance_query_set(&mut rng);
    let ada_specs: Vec<ColumnSpec> = ada
        .columns
        .iter()
        .map(|(n, _)| {
            if n == "measure00" || n == "measure01" {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let ada_samples: Vec<_> = ada_queries.iter().map(|q| parse(&q.sql).expect("sample")).collect();
    let mut ada_client =
        SeabedClient::create_plan(b"tenant-a-key", &ada_specs, &ada_samples, &PlannerConfig::default());
    let ada_encrypted = ada_client.encrypt_dataset(&ada, 16, &mut rng);

    // 2. Tenant B: a sales table with a DET dimension and an OPE timestamp.
    let n = 10_000usize;
    let sales = PlainDataset::new("sales")
        .with_text_column("dept", (0..n).map(|i| format!("d{}", i % 6)).collect())
        .with_uint_column("revenue", (0..n as u64).map(|i| (i * 13) % 1_000).collect())
        .with_uint_column("ts", (0..n as u64).map(|i| (i * 7919) % 50_000).collect());
    let sales_specs = vec![
        ColumnSpec::sensitive("dept"),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("ts"),
    ];
    let sales_samples = vec![
        parse("SELECT SUM(revenue) FROM sales WHERE dept = 'd1'").expect("sample"),
        parse("SELECT SUM(revenue) FROM sales WHERE ts >= 3").expect("sample"),
        parse("SELECT dept, SUM(revenue) FROM sales GROUP BY dept").expect("sample"),
    ];
    let mut sales_client =
        SeabedClient::create_plan(b"tenant-b-key", &sales_specs, &sales_samples, &PlannerConfig::default());
    let sales_encrypted = sales_client.encrypt_dataset(&sales, 12, &mut rng);

    // 3. Four untrusted workers on ephemeral ports. Each starts empty; the
    //    coordinator shards BOTH tables across the one pool under a fresh
    //    epoch — shard identifiers carry the table id on the wire.
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let w = spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker must start");
            println!("worker {i} listening on {}", w.local_addr());
            w
        })
        .collect();
    let addrs: Vec<_> = workers.iter().map(|w| w.local_addr()).collect();
    let coordinator = DistCoordinator::connect_tables(
        &addrs,
        vec![
            ("ad_analytics".to_string(), ada_encrypted.table.clone()),
            ("sales".to_string(), sales_encrypted.table.clone()),
        ],
        DistConfig::default(),
    )
    .expect("coordinator must connect");
    println!(
        "coordinator: epoch {}, tables {:?}, {} shards across {} workers\n",
        coordinator.epoch(),
        coordinator.table_names(),
        coordinator.num_shards(),
        addrs.len()
    );

    // 4. One session over both tenants: the catalog holds each table's keys
    //    and plan; queries route by FROM.
    let catalog = Catalog::new()
        .with_table("ad_analytics", ada_client)
        .with_table("sales", sales_client);
    let session = SeabedSession::new(catalog, &coordinator);

    for q in ada_queries.iter().take(3) {
        let result = session.query(&q.sql, &[]).expect("distributed query");
        let report = coordinator.last_report();
        println!("{}", q.sql);
        println!(
            "  -> {} group(s), scatter/gather {:.2} ms over {} shard quer{}",
            result.rows.len(),
            report.wall_time.as_secs_f64() * 1e3,
            report.runs.len(),
            if report.runs.len() == 1 { "y" } else { "ies" }
        );
    }

    // 5. A prepared, parameterized statement against the second tenant: the
    //    plan is fixed once; each execution binds and encrypts only the two
    //    literals before scattering.
    let prepared = session
        .prepare("SELECT SUM(revenue) FROM sales WHERE dept = ? AND ts >= ?")
        .expect("prepare");
    println!(
        "\nprepared: {} ({} parameter(s))",
        prepared.sql(),
        prepared.param_count()
    );
    for (dept, min_ts) in [("d0", 0u64), ("d3", 25_000), ("d5", 40_000)] {
        let result = session
            .execute(&prepared, &[Literal::Text(dept.to_string()), Literal::Integer(min_ts)])
            .expect("prepared execute");
        println!("  dept={dept} ts>={min_ts} -> {:?}", result.rows);
    }

    // 6. Per-worker accounting: (table, shard) pairs held, queries, traffic.
    println!("\nper-worker stats:");
    for summary in coordinator.worker_summaries() {
        println!(
            "  {} alive={} shards={:?} queries={} sent={}B received={}B",
            summary.label, summary.alive, summary.shards, summary.queries, summary.bytes_sent, summary.bytes_received
        );
    }
    let stats = session.stats();
    println!(
        "session: {} statement(s) prepared, {} cache hit(s), {} execution(s)",
        stats.statements_prepared, stats.cache_hits, stats.executes
    );

    drop(session);
    drop(coordinator);
    for w in workers {
        let stats = w.shutdown();
        println!(
            "worker closed: {} connections, {} requests, {} B in, {} B out",
            stats.connections, stats.requests_served, stats.bytes_in, stats.bytes_out
        );
    }
}
