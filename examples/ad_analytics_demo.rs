//! Runs the Ad-Analytics style workload end-to-end: hour-of-day group-by
//! aggregations over an encrypted fact table (§6.6 of the paper).
//!
//! Run with: `cargo run -p seabed-core --release --example ad_analytics_demo`

use seabed_core::{SeabedClient, SeabedServer};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_query::{parse, ColumnSpec, PlannerConfig};
use seabed_workloads::ad_analytics;

fn main() {
    let rows = 50_000;
    let mut rng = rand::rng();
    println!(
        "Generating {} rows with {} dimensions and {} measures...",
        rows,
        ad_analytics::NUM_DIMENSIONS,
        ad_analytics::NUM_MEASURES
    );
    let dataset = ad_analytics::generate(&mut rng, rows);
    let queries = ad_analytics::performance_query_set(&mut rng);

    // Sensitive columns: the hour dimension (range-filtered -> OPE) and the
    // first two measures (ASHE).
    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if n == "measure00" || n == "measure01" {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let samples: Vec<_> = queries.iter().map(|q| parse(&q.sql).unwrap()).collect();
    let mut client = SeabedClient::create_plan(b"ad-analytics-master", &specs, &samples, &PlannerConfig::default());

    println!("Encrypting and uploading...");
    let encrypted = client.encrypt_dataset(&dataset, 32, &mut rng);
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(64)));

    println!("Running the 15-query performance set:\n");
    let mut latencies: Vec<f64> = Vec::new();
    for q in &queries {
        let result = client.query(&server, &q.sql).expect("query failed");
        let total = result.timings.total().as_secs_f64();
        latencies.push(total);
        println!(
            "  groups={:<2} rows_out={:<3} total={:>8.4}s (server {:>8.4}s, client {:>8.4}s, {} bytes)",
            q.groups,
            result.rows.len(),
            total,
            result.timings.server.as_secs_f64(),
            result.timings.client.as_secs_f64(),
            result.result_bytes
        );
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("\nMedian response time: {:.4}s", latencies[latencies.len() / 2]);
}
