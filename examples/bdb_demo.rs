//! Runs the AmpLab Big Data Benchmark queries over encrypted tables
//! (§6.7 / Figure 9(b,c) of the paper).
//!
//! Run with: `cargo run -p seabed-core --release --example bdb_demo`

use seabed_core::{SeabedClient, SeabedServer};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_query::{parse, ColumnSpec, PlannerConfig};
use seabed_workloads::bdb;

fn main() {
    let mut rng = rand::rng();
    let tables = bdb::generate(&mut rng, 5_000, 50_000);
    println!(
        "Rankings: {} rows, UserVisits: {} rows",
        tables.rankings.num_rows(),
        tables.uservisits.num_rows()
    );

    let build = |dataset: &seabed_core::PlainDataset, sensitive: &[&str], rng: &mut rand::rngs::ThreadRng| {
        let specs: Vec<ColumnSpec> = dataset
            .columns
            .iter()
            .map(|(n, _)| {
                if sensitive.contains(&n.as_str()) {
                    ColumnSpec::sensitive(n)
                } else {
                    ColumnSpec::public(n)
                }
            })
            .collect();
        let samples: Vec<_> = bdb::queries()
            .iter()
            .filter(|q| dataset.name == q.table)
            .map(|q| parse(&q.sql).unwrap())
            .collect();
        let mut client = SeabedClient::create_plan(b"bdb-master", &specs, &samples, &PlannerConfig::default());
        let encrypted = client.encrypt_dataset(dataset, 16, rng);
        let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(32)));
        (client, server)
    };
    let (rank_client, rank_server) = build(&tables.rankings, &["pageRank", "avgDuration"], &mut rng);
    let (uv_client, uv_server) = build(
        &tables.uservisits,
        &[
            "adRevenue",
            "duration",
            "visitDate",
            "ipPrefix",
            "destURL",
            "countryCode",
        ],
        &mut rng,
    );

    for query in bdb::queries() {
        let (client, server) = if query.table == "rankings" {
            (&rank_client, &rank_server)
        } else {
            (&uv_client, &uv_server)
        };
        // Scan queries are measured as count-scans (server-side work only).
        let sql = if query.name.starts_with("Q1") {
            query.sql.replace("SELECT pageURL, pageRank", "SELECT COUNT(*)")
        } else {
            query.sql.clone()
        };
        match client.query(server, &sql) {
            Ok(result) => println!(
                "{:<4} groups={:<6} total={:>8.4}s   [{}]",
                query.name,
                result.rows.len(),
                result.timings.total().as_secs_f64(),
                query.notes
            ),
            Err(err) => println!("{:<4} unsupported: {err}", query.name),
        }
    }
}
