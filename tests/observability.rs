//! End-to-end observability acceptance tests.
//!
//! Pins the three headline guarantees of the `seabed-obs` layer:
//!
//! 1. **Propagation** — one distributed prepared query carries a single
//!    `TraceId` minted at the session through the coordinator's scatter and
//!    over the wire into every worker, and the spans stitched back together
//!    cover the whole lifecycle (parse → translate → encrypt-filters →
//!    dispatch → scatter → shard-execute → gather → merge → decrypt). A
//!    remote scrape of a live worker returns non-zero shard-execute
//!    histograms and the propagated id.
//! 2. **Redaction** — nothing a scrape ships (metric names, trace span
//!    names, node labels, either exposition format) ever contains a
//!    plaintext query literal.
//! 3. **Invisibility** — instrumented execution is byte-identical to
//!    execution under a disabled registry, and its overhead is bounded.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use seabed_core::{PlainDataset, SeabedClient, SeabedServer, SeabedSession};
use seabed_dist::{spawn_worker, DistConfig, DistCoordinator};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_net::{scrape_metrics, NetServer, ServiceConfig};
use seabed_obs::{ObsConfig, Registry, UNTRACED};
use seabed_query::{parse, ColumnSpec, PlannerConfig, Query};

/// The plaintext literal the propagation query filters on; redaction asserts
/// it never leaves the session.
const SECRET_LITERAL: &str = "USA";

fn sales_fixture() -> (SeabedClient, SeabedServer) {
    let n = 1_200usize;
    let countries = ["USA", "USA", "Canada", "India", "USA", "Chile"];
    let dataset = PlainDataset::new("sales")
        .with_text_column(
            "country",
            (0..n).map(|i| countries[i % countries.len()].to_string()).collect(),
        )
        .with_uint_column("revenue", (0..n as u64).map(|i| (i * 13) % 500).collect());
    let columns = vec![
        ColumnSpec::sensitive_with_distribution("country", dataset.distribution("country").expect("column exists")),
        ColumnSpec::sensitive("revenue"),
    ];
    let samples: Vec<Query> = ["SELECT SUM(revenue) FROM sales WHERE country = 'USA'"]
        .iter()
        .map(|sql| parse(sql).expect("sample"))
        .collect();
    let mut client = SeabedClient::create_plan(b"obs-e2e", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 6, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(4)));
    (client, server)
}

fn cluster_of(n: usize, server: &SeabedServer) -> (Vec<NetServer>, DistCoordinator) {
    let workers: Vec<NetServer> = (0..n)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker must start"))
        .collect();
    let addrs: Vec<_> = workers.iter().map(|w| w.local_addr()).collect();
    let coordinator =
        DistCoordinator::connect(&addrs, server.table().clone(), DistConfig::default()).expect("coordinator connects");
    (workers, coordinator)
}

/// The headline acceptance test: one distributed prepared query, one trace
/// id, spans from session + coordinator + workers, and a live remote scrape
/// that both proves shard-level histograms and stays redacted.
#[test]
fn distributed_query_propagates_one_trace_id_from_parse_to_merge() {
    let (client, server) = sales_fixture();
    let (workers, coordinator) = cluster_of(2, &server);
    // Sharing the coordinator's registry is what lets `merged_trace` stitch
    // session spans and coordinator spans into one timeline.
    let session = SeabedSession::single("sales", client, &coordinator).with_obs(coordinator.registry());

    let sql = "SELECT SUM(revenue) FROM sales WHERE country = 'USA'";
    let (result, trace_id) = session.query_traced(sql, &[]).expect("traced query");
    assert!(!result.rows.is_empty(), "query must return rows");
    assert_ne!(trace_id, UNTRACED, "an enabled session mints a real trace id");

    // --- The stitched local timeline covers every lifecycle stage. ---
    let merged = session.registry().merged_trace(trace_id).expect("trace recorded");
    let names: HashSet<&str> = merged.spans.iter().map(|s| s.name.as_str()).collect();
    for stage in [
        "parse",
        "translate",
        "encrypt-filters",
        "dispatch",
        "scatter",
        "shard-execute",
        "gather",
        "merge",
        "decrypt",
    ] {
        assert!(names.contains(stage), "merged trace missing {stage:?}: {names:?}");
    }
    assert!(
        merged.node.contains("session") && merged.node.contains("coordinator"),
        "both components must contribute spans, got node {:?}",
        merged.node
    );
    assert_eq!(
        merged.statement_id,
        seabed_core::fnv1a64(sql.as_bytes()),
        "the trace is keyed to the statement by hash, never by text"
    );

    // --- A remote scrape of the live workers sees the same id. ---
    let mut propagated_spans = 0usize;
    let mut shard_execute_count = 0u64;
    for worker in &workers {
        let (snapshot, traces, events) =
            scrape_metrics(worker.local_addr(), true, true, Duration::from_secs(5)).expect("worker scrape");
        shard_execute_count += snapshot.histogram("shard_execute_ns").map(|h| h.count).unwrap_or(0);
        propagated_spans += traces
            .iter()
            .filter(|t| t.trace_id == trace_id)
            .flat_map(|t| t.spans.iter())
            .filter(|s| s.name == "shard-execute")
            .count();

        // --- Redaction: nothing scraped carries the plaintext literal. ---
        assert!(
            !snapshot.to_json().contains(SECRET_LITERAL),
            "JSON exposition leaked a query literal"
        );
        assert!(
            !snapshot.to_prometheus().contains(SECRET_LITERAL),
            "Prometheus exposition leaked a query literal"
        );
        for trace in &traces {
            assert!(!trace.node.contains(SECRET_LITERAL), "trace node leaked a literal");
            for span in &trace.spans {
                assert!(!span.name.contains(SECRET_LITERAL), "span name leaked a literal");
            }
        }
        for event in &events {
            let rendered = event.to_json();
            assert!(
                !rendered.contains(SECRET_LITERAL),
                "scraped query event leaked a literal: {rendered}"
            );
            assert!(
                !rendered.contains("SELECT"),
                "scraped query event leaked SQL text: {rendered}"
            );
        }
    }
    assert!(
        shard_execute_count > 0,
        "live workers must expose non-zero shard-execute histograms"
    );
    assert!(
        propagated_spans > 0,
        "the session's trace id must reach worker-side shard-execute spans"
    );

    // The coordinator's own metrics saw the scatter.
    let snapshot = session.registry().snapshot();
    assert!(
        snapshot.counter("dist_cache_misses").unwrap_or(0) > 0,
        "first run scatters"
    );
    assert!(
        snapshot.histogram("dist_scatter_ns").map(|h| h.count).unwrap_or(0) > 0,
        "scatter latency must be recorded"
    );
    assert!(
        !snapshot.to_json().contains(SECRET_LITERAL),
        "local exposition redacted"
    );

    for worker in workers {
        worker.shutdown();
    }
}

/// Instrumentation must be invisible in the data plane: the same prepared
/// query under an enabled and a disabled registry produces byte-identical
/// encrypted responses and identical decrypted rows, and the enabled path's
/// overhead stays bounded.
#[test]
fn instrumented_execution_is_byte_identical_and_overhead_bounded() {
    let n = 24_000usize;
    let dataset = PlainDataset::new("big").with_uint_column("v", (0..n as u64).map(|i| (i * 31) % 10_000).collect());
    let columns = vec![ColumnSpec::sensitive("v")];
    let samples = vec![parse("SELECT SUM(v) FROM big").expect("sample")];
    let mut client = SeabedClient::create_plan(b"obs-overhead", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 8, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(4)));

    // Two sessions over the same server: one fully instrumented (the
    // default), one with observability switched off.
    let instrumented = SeabedSession::single("big", client.clone(), &server);
    let disabled = SeabedSession::single("big", client, &server).with_obs(Registry::new(ObsConfig::disabled()));
    assert!(instrumented.registry().enabled());
    assert!(!disabled.registry().enabled());

    let sql = "SELECT SUM(v) FROM big";
    let prepared_on = instrumented.prepare(sql).expect("prepare instrumented");
    let prepared_off = disabled.prepare(sql).expect("prepare disabled");

    // Byte-identity of the encrypted server responses...
    let (_, response_on) = instrumented.execute_encrypted(&prepared_on, &[]).expect("encrypted on");
    let (_, response_off) = disabled.execute_encrypted(&prepared_off, &[]).expect("encrypted off");
    assert_eq!(response_on.groups, response_off.groups, "encrypted groups diverged");
    assert_eq!(
        response_on.result_bytes, response_off.result_bytes,
        "result bytes diverged"
    );

    // ...and of the decrypted results through the traced vs. untraced path.
    let (traced, trace_id) = instrumented.query_traced(sql, &[]).expect("traced query");
    let untraced = disabled.query(sql, &[]).expect("untraced query");
    assert_ne!(trace_id, UNTRACED);
    assert_eq!(traced.rows, untraced.rows, "decrypted rows diverged");
    assert_eq!(traced.result_bytes, untraced.result_bytes);

    // The disabled session recorded nothing; the instrumented one did.
    assert!(disabled.registry().recent_traces().is_empty());
    assert!(instrumented.registry().merged_trace(trace_id).is_some());

    // Overhead guard: best-of-N prepared executes. The bound is deliberately
    // generous (3x + absolute slack) — this is a regression tripwire against
    // instrumentation on the hot path, not a microbenchmark.
    let best_of = |session: &SeabedSession<'_, SeabedServer>, prepared: &seabed_core::PreparedQuery| {
        let mut best = Duration::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            session.execute(prepared, &[]).expect("timed execute");
            best = best.min(start.elapsed());
        }
        best
    };
    let on = best_of(&instrumented, &prepared_on);
    let off = best_of(&disabled, &prepared_off);
    assert!(
        on <= off * 3 + Duration::from_millis(50),
        "instrumented execution too slow: {on:?} vs uninstrumented {off:?}"
    );
}
