//! Integration test: the Big Data Benchmark queries run end-to-end over
//! encrypted tables and produce the same answers as a plaintext evaluation.

use seabed_core::{PlainDataset, ResultValue, SeabedClient, SeabedServer};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_query::{parse, ColumnSpec, PlannerConfig};
use seabed_workloads::bdb;
use std::collections::HashMap;

fn build(dataset: &PlainDataset, sensitive: &[&str]) -> (SeabedClient, SeabedServer) {
    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if sensitive.contains(&n.as_str()) {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let samples: Vec<_> = bdb::queries()
        .iter()
        .filter(|q| dataset.name == q.table)
        .map(|q| parse(&q.sql).unwrap())
        .collect();
    let mut client = SeabedClient::create_plan(b"bdb-it", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(dataset, 4, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
    (client, server)
}

#[test]
fn q1_scan_counts_match_plaintext() {
    let rankings = bdb::rankings(&mut rand::rng(), 2_000);
    let (client, server) = build(&rankings, &["pageRank", "avgDuration"]);
    let rank = rankings.column("pageRank").unwrap();
    for threshold in [10u64, 100, 1000] {
        let expected = (0..rankings.num_rows())
            .filter(|&i| rank.u64_at(i).unwrap() > threshold)
            .count() as u64;
        let result = client
            .query(
                &server,
                &format!("SELECT COUNT(*) FROM rankings WHERE pageRank > {threshold}"),
            )
            .unwrap();
        assert_eq!(result.rows[0][0], ResultValue::UInt(expected), "threshold {threshold}");
    }
}

#[test]
fn q2_prefix_aggregation_matches_plaintext() {
    let uservisits = bdb::uservisits(&mut rand::rng(), 3_000, 500);
    let (client, server) = build(&uservisits, &["adRevenue", "duration", "visitDate", "ipPrefix"]);
    let result = client
        .query(
            &server,
            "SELECT ipPrefix, SUM(adRevenue) FROM uservisits GROUP BY ipPrefix",
        )
        .unwrap();
    let prefix = uservisits.column("ipPrefix").unwrap();
    let revenue = uservisits.column("adRevenue").unwrap();
    let mut expected: HashMap<String, u64> = HashMap::new();
    for i in 0..uservisits.num_rows() {
        *expected.entry(prefix.text_at(i)).or_insert(0) += revenue.u64_at(i).unwrap();
    }
    assert_eq!(result.rows.len(), expected.len());
    for row in &result.rows {
        let ResultValue::Text(key) = &row[0] else {
            panic!("expected decrypted group key")
        };
        assert_eq!(row[1].as_u64().unwrap(), expected[key], "prefix {key}");
    }
}

#[test]
fn q3_date_filtered_join_side_matches_plaintext() {
    let uservisits = bdb::uservisits(&mut rand::rng(), 3_000, 200);
    let (client, server) = build(&uservisits, &["adRevenue", "visitDate", "destURL"]);
    let result = client
        .query(
            &server,
            "SELECT destURL, SUM(adRevenue) FROM uservisits WHERE visitDate >= 1000 AND visitDate < 4000 GROUP BY destURL",
        )
        .unwrap();
    let url = uservisits.column("destURL").unwrap();
    let date = uservisits.column("visitDate").unwrap();
    let revenue = uservisits.column("adRevenue").unwrap();
    let mut expected: HashMap<String, u64> = HashMap::new();
    for i in 0..uservisits.num_rows() {
        let d = date.u64_at(i).unwrap();
        if (1000..4000).contains(&d) {
            *expected.entry(url.text_at(i)).or_insert(0) += revenue.u64_at(i).unwrap();
        }
    }
    assert_eq!(result.rows.len(), expected.len());
    let total: u64 = result.rows.iter().map(|r| r[1].as_u64().unwrap()).sum();
    assert_eq!(total, expected.values().sum::<u64>());
}

#[test]
fn q4_country_counts_match_plaintext() {
    let uservisits = bdb::uservisits(&mut rand::rng(), 2_000, 100);
    let (client, server) = build(&uservisits, &["adRevenue", "countryCode"]);
    let result = client
        .query(
            &server,
            "SELECT countryCode, COUNT(*) FROM uservisits GROUP BY countryCode",
        )
        .unwrap();
    let country = uservisits.column("countryCode").unwrap();
    let mut expected: HashMap<String, u64> = HashMap::new();
    for i in 0..uservisits.num_rows() {
        *expected.entry(country.text_at(i)).or_insert(0) += 1;
    }
    assert_eq!(result.rows.len(), expected.len());
    for row in &result.rows {
        let ResultValue::Text(key) = &row[0] else { panic!() };
        assert_eq!(row[1].as_u64().unwrap(), expected[key]);
    }
}
