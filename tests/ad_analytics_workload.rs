//! Integration test: the Ad-Analytics style workload (hour-of-day group-by
//! aggregations) over an encrypted fact table.

use seabed_core::{ResultValue, SeabedClient, SeabedServer};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_query::{parse, ColumnSpec, PlannerConfig};
use seabed_workloads::ad_analytics;
use std::collections::HashMap;

#[test]
fn hourly_aggregations_match_plaintext() {
    let mut rng = rand::rng();
    let rows = 4_000;
    let dataset = ad_analytics::generate(&mut rng, rows);
    let queries = ad_analytics::performance_query_set(&mut rng);

    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if n == "measure00" || n == "measure01" {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let samples: Vec<_> = queries.iter().map(|q| parse(&q.sql).unwrap()).collect();
    let mut client = SeabedClient::create_plan(b"ada-it", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 8, &mut rng);
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(16)));

    let hour = dataset.column("hour").unwrap();
    for q in queries.iter().take(6) {
        let result = client.query(&server, &q.sql).expect("query failed");
        // Reconstruct the measure name and hour window from the SQL.
        let measure_name = q
            .sql
            .split("SUM(")
            .nth(1)
            .unwrap()
            .split(')')
            .next()
            .unwrap()
            .to_string();
        let lo: u64 = q
            .sql
            .split(">= ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let hi: u64 = q
            .sql
            .split("< ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        let measure = dataset.column(&measure_name).unwrap();
        let mut expected: HashMap<u64, u64> = HashMap::new();
        for i in 0..dataset.num_rows() {
            let h = hour.u64_at(i).unwrap();
            if h >= lo && h < hi {
                *expected.entry(h).or_insert(0) += measure.u64_at(i).unwrap();
            }
        }
        assert_eq!(result.rows.len(), expected.len(), "group count for {}", q.sql);
        for row in &result.rows {
            // The hour group key comes back as an OPE-encrypted tag rendered
            // via the DET dictionary only for DET columns; for OPE group keys
            // the proxy reports the raw tag, so compare sums by matching totals.
            let _ = row;
        }
        let total: u64 = result.rows.iter().map(|r| r.last().unwrap().as_u64().unwrap()).sum();
        assert_eq!(total, expected.values().sum::<u64>(), "total for {}", q.sql);
    }
}

#[test]
fn query_log_is_mostly_server_supported() {
    let mut rng = rand::rng();
    let log = ad_analytics::query_log(&mut rng, 500);
    let counts = seabed_workloads::classify_set(log.iter().map(|q| q.sql.as_str()));
    assert_eq!(counts.total(), 500);
    assert!(counts.server_fraction() > 0.75);
}

#[test]
fn splashe_planning_covers_the_sensitive_dimensions() {
    let profiles = ad_analytics::sensitive_dimension_profiles(100_000);
    let total_columns = ad_analytics::NUM_DIMENSIONS + ad_analytics::NUM_MEASURES;
    let curve = seabed_splashe::overhead_curve(&profiles, total_columns);
    assert_eq!(curve.len(), ad_analytics::SENSITIVE_DIMENSIONS);
    // Paper: enhanced SPLASHE covers the whole sensitive set at roughly 10x.
    let final_point = curve.last().unwrap();
    assert!(final_point.cumulative_enhanced < final_point.cumulative_basic);
    assert!(final_point.cumulative_enhanced < 40.0);
}

#[test]
fn hour_group_keys_round_trip_as_values() {
    // Sanity check on result shape: one row per hour in the window, one
    // aggregate column, monotone group keys when decrypted or tagged.
    let mut rng = rand::rng();
    let dataset = ad_analytics::generate(&mut rng, 2_000);
    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if n == "measure00" {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let sql = "SELECT hour, SUM(measure00) FROM ad_analytics GROUP BY hour";
    let samples = vec![parse(sql).unwrap()];
    let mut client = SeabedClient::create_plan(b"ada-it2", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 4, &mut rng);
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
    let result = client.query(&server, sql).unwrap();
    assert_eq!(result.rows.len(), 24);
    for row in &result.rows {
        assert!(
            matches!(row[0], ResultValue::UInt(h) if h < 24),
            "plaintext hour key expected"
        );
    }
}
