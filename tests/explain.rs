//! Acceptance tests for `EXPLAIN` / `EXPLAIN ANALYZE`.
//!
//! Pins the three contract points of the profiling surface:
//!
//! 1. **`EXPLAIN` never executes** — the structural plan comes back without
//!    a single call into the query target (locally) and without a single
//!    frame reaching a worker (distributed).
//! 2. **`EXPLAIN ANALYZE` is invisible in the data plane** — the analyzed
//!    execution's decrypted rows are identical to a plain execution of the
//!    same statement, on both the sales fixture and the Ad-Analytics
//!    workload, locally and through a distributed coordinator (whose
//!    stitched plan must carry per-shard per-operator measurements).
//! 3. **Redaction** — nothing an explanation or a captured query event
//!    renders ever contains a predicate literal or raw SQL text.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use seabed_core::{
    PhysicalFilter, PlainDataset, QueryTarget, SeabedClient, SeabedServer, SeabedSession, ServerResponse,
};
use seabed_dist::{spawn_worker, DistConfig, DistCoordinator};
use seabed_engine::{Cluster, ClusterConfig, Schema};
use seabed_error::SeabedError;
use seabed_net::{scrape_metrics, ServiceConfig};
use seabed_query::{parse, ColumnSpec, PlanNode, PlannerConfig, TranslatedQuery};

/// The plaintext literal the explained queries filter on; redaction asserts
/// it never shows up in any explain surface.
const SECRET_LITERAL: &str = "retail";

fn sales_fixture() -> (SeabedClient, SeabedServer) {
    let n = 1_200usize;
    let depts = ["retail", "wholesale", "online", "partner"];
    let dataset = PlainDataset::new("sales")
        .with_text_column("dept", (0..n).map(|i| depts[i % depts.len()].to_string()).collect())
        .with_uint_column("revenue", (0..n as u64).map(|i| (i * 13) % 500).collect())
        .with_uint_column("ts", (0..n as u64).map(|i| (i * 7) % 1000).collect());
    let columns = vec![
        ColumnSpec::sensitive("dept"),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("ts"),
    ];
    let samples = vec![
        parse("SELECT SUM(revenue) FROM sales WHERE dept = 'retail'").expect("sample"),
        parse("SELECT SUM(revenue) FROM sales WHERE ts >= 100").expect("sample"),
    ];
    let mut client = SeabedClient::create_plan(b"explain-it", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 6, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(4)));
    (client, server)
}

/// A query target that counts every execution reaching it, so a test can
/// assert that `EXPLAIN` performed exactly zero of them.
struct CountingTarget<'a> {
    inner: &'a SeabedServer,
    executes: AtomicU64,
}

impl QueryTarget for CountingTarget<'_> {
    fn schema_of(&self, table: &str) -> Result<&Schema, SeabedError> {
        self.inner.schema_of(table)
    }

    fn execute_query(
        &self,
        query: &TranslatedQuery,
        filters: &[PhysicalFilter],
    ) -> Result<ServerResponse, SeabedError> {
        self.executes.fetch_add(1, Ordering::Relaxed);
        self.inner.execute_query(query, filters)
    }

    fn execute_query_analyzed(
        &self,
        query: &TranslatedQuery,
        filters: &[PhysicalFilter],
        trace_id: u64,
        analyze: bool,
    ) -> Result<ServerResponse, SeabedError> {
        self.executes.fetch_add(1, Ordering::Relaxed);
        self.inner.execute_query_analyzed(query, filters, trace_id, analyze)
    }
}

#[test]
fn explain_returns_the_plan_without_executing() {
    let (client, server) = sales_fixture();
    let target = CountingTarget {
        inner: &server,
        executes: AtomicU64::new(0),
    };
    let session = SeabedSession::single("sales", client, &target);

    let sql = "EXPLAIN SELECT SUM(revenue) FROM sales WHERE dept = 'retail' AND ts >= 100";
    let explanation = session.explain(sql, &[]).expect("explain");
    assert_eq!(
        target.executes.load(Ordering::Relaxed),
        0,
        "EXPLAIN must not execute anything"
    );
    assert!(!explanation.analyzed);
    assert!(explanation.result.is_none(), "EXPLAIN returns no rows");

    // The structural tree covers scan → filter chain → aggregate, labelled
    // by operator class and physical column.
    let rendered = explanation.render();
    assert!(rendered.contains("scan sales"), "{rendered}");
    assert!(rendered.contains("filter det:"), "{rendered}");
    assert!(rendered.contains("aggregate"), "{rendered}");
    // No node carries a profile: nothing was measured.
    fn no_profiles(node: &PlanNode) {
        assert!(node.profile.is_none(), "EXPLAIN node {} has a profile", node.op);
        node.children.iter().for_each(no_profiles);
    }
    no_profiles(&explanation.plan);

    // EXPLAIN ANALYZE on the same target executes exactly once.
    let analyzed = session
        .explain(
            "EXPLAIN ANALYZE SELECT SUM(revenue) FROM sales WHERE dept = 'retail' AND ts >= 100",
            &[],
        )
        .expect("explain analyze");
    assert_eq!(target.executes.load(Ordering::Relaxed), 1);
    assert!(analyzed.analyzed);
    assert!(analyzed.result.is_some());
}

#[test]
fn explain_analyze_rows_match_plain_execution_on_sales() {
    let (client, server) = sales_fixture();
    let session = SeabedSession::single("sales", client, &server);

    let sql = "SELECT SUM(revenue) FROM sales WHERE dept = 'retail' AND ts >= 100";
    let plain = session.query(sql, &[]).expect("plain query");
    let explanation = session
        .explain(&format!("EXPLAIN ANALYZE {sql}"), &[])
        .expect("explain analyze");
    let analyzed = explanation.result.as_ref().expect("EXPLAIN ANALYZE returns the rows");
    assert_eq!(analyzed.rows, plain.rows, "analyzed execution diverged");
    assert_eq!(analyzed.result_bytes, plain.result_bytes);

    // The annotated plan carries measured per-operator profiles.
    let rendered = explanation.render();
    assert!(rendered.contains("rows_in="), "no measured profiles: {rendered}");
}

#[test]
fn explain_analyze_rows_match_plain_execution_on_ad_analytics() {
    let mut rng = rand::rng();
    let dataset = seabed_workloads::ad_analytics::generate(&mut rng, 2_000);
    let queries = seabed_workloads::ad_analytics::performance_query_set(&mut rng);
    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if n == "measure00" || n == "measure01" {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let samples: Vec<_> = queries.iter().map(|q| parse(&q.sql).expect("sample")).collect();
    let mut client = SeabedClient::create_plan(b"explain-ada", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 8, &mut rng);
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
    let session = SeabedSession::single("ad_analytics", client, &server);

    for q in queries.iter().take(4) {
        let plain = session.query(&q.sql, &[]).expect("plain query");
        let explanation = session
            .explain(&format!("EXPLAIN ANALYZE {}", q.sql), &[])
            .expect("explain analyze");
        let analyzed = explanation.result.expect("rows");
        assert_eq!(analyzed.rows, plain.rows, "diverged on {}", q.sql);
    }
}

/// The distributed acceptance criterion: one `EXPLAIN ANALYZE` through a
/// coordinator returns the whole cluster's stitched plan — coordinator
/// scatter/gather/merge stages plus one node per shard with its worker and
/// its measured per-operator rows — while a plain `EXPLAIN` generates no
/// worker traffic at all.
#[test]
fn distributed_explain_analyze_stitches_shard_profiles() {
    let (client, server) = sales_fixture();
    let workers: Vec<_> = (0..2)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker must start"))
        .collect();
    let addrs: Vec<_> = workers.iter().map(|w| w.local_addr()).collect();
    let coordinator =
        DistCoordinator::connect(&addrs, server.table().clone(), DistConfig::default()).expect("coordinator connects");
    let session = SeabedSession::single("sales", client, &coordinator).with_obs(coordinator.registry());

    let sql = "SELECT SUM(revenue) FROM sales WHERE dept = 'retail' AND ts >= 100";
    let plain = session.query(sql, &[]).expect("plain query");

    // --- Plain EXPLAIN: zero worker traffic. The shard-execute histogram
    // only moves when a ShardQuery actually runs on a worker (the scrapes
    // bumping `net_requests_served` don't touch it). ---
    let shard_executes = |addrs: &[std::net::SocketAddr]| -> u64 {
        addrs
            .iter()
            .map(|a| {
                let (snapshot, _, _) = scrape_metrics(*a, false, false, Duration::from_secs(5)).expect("scrape");
                snapshot.histogram("shard_execute_ns").map(|h| h.count).unwrap_or(0)
            })
            .sum()
    };
    let executed_before = shard_executes(&addrs);
    let explained = session.explain(&format!("EXPLAIN {sql}"), &[]).expect("explain");
    assert!(explained.result.is_none());
    assert_eq!(
        shard_executes(&addrs),
        executed_before,
        "EXPLAIN must not run a single shard query on any worker"
    );

    // --- EXPLAIN ANALYZE: identical rows plus the stitched cluster plan. ---
    let explanation = session
        .explain(&format!("EXPLAIN ANALYZE {sql}"), &[])
        .expect("explain analyze");
    let analyzed = explanation.result.as_ref().expect("rows");
    assert_eq!(analyzed.rows, plain.rows, "analyzed distributed execution diverged");

    let rendered = explanation.render();
    for stage in ["dist", "scatter", "shard 0/", "shard 1/", "gather", "merge"] {
        assert!(rendered.contains(stage), "stitched plan missing {stage:?}:\n{rendered}");
    }
    assert!(
        rendered.contains('@'),
        "shard nodes must name their worker:\n{rendered}"
    );

    // Each shard node carries measured per-operator children with real row
    // counts flowing through.
    fn shard_operator_rows(node: &PlanNode) -> u64 {
        let own: u64 = if node.op == "shard" {
            node.children
                .iter()
                .filter(|c| c.op == "operator")
                .filter_map(|c| c.profile.as_ref())
                .map(|p| p.rows_in)
                .sum()
        } else {
            0
        };
        own + node.children.iter().map(shard_operator_rows).sum::<u64>()
    }
    assert!(
        shard_operator_rows(&explanation.plan) > 0,
        "per-shard operator profiles must carry rows:\n{rendered}"
    );

    // The shared registry captured coordinator-side query events whose plans
    // are the same redacted trees.
    let events = session.registry().recent_events();
    assert!(
        events.iter().any(|e| e.node == "coordinator"),
        "coordinator must record query events"
    );

    // --- Redaction byte-scan over every explain surface. ---
    for payload in [
        rendered.clone(),
        explanation.plan.to_json(),
        seabed_obs::events_to_json(&events),
    ] {
        assert!(
            !payload.contains(SECRET_LITERAL),
            "explain surface leaked a predicate literal: {payload}"
        );
        assert!(!payload.contains("SELECT"), "explain surface leaked raw SQL: {payload}");
    }

    drop(session);
    drop(coordinator);
    for w in workers {
        w.shutdown();
    }
}
