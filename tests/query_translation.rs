//! Integration tests for the planner + translator against the Table 2
//! examples and edge cases.

use seabed_query::{
    encnames, parse, plan_schema, translate, ColumnSpec, EncryptionChoice, PlannerConfig, ServerAggregate,
    ServerFilter, TranslateOptions,
};

fn plan() -> seabed_query::SchemaPlan {
    let columns = vec![
        ColumnSpec::sensitive("a_measure"),
        ColumnSpec::sensitive("b"),
        ColumnSpec::sensitive_with_distribution("a", vec![("10".into(), 1000), ("20".into(), 30), ("30".into(), 20)]),
        ColumnSpec::sensitive("g"),
        ColumnSpec::public("pub"),
    ];
    let samples: Vec<_> = [
        "SELECT SUM(a_measure) FROM t WHERE b > 10",
        "SELECT COUNT(*) FROM t WHERE a = 10",
        "SELECT g, SUM(a_measure) FROM t GROUP BY g",
    ]
    .iter()
    .map(|s| parse(s).unwrap())
    .collect();
    plan_schema(&columns, &samples, &PlannerConfig::default())
}

#[test]
fn table2_row1_id_preservation_through_subquery() {
    let p = plan();
    let q = parse("SELECT sum(tmp.a_measure) FROM (SELECT a_measure FROM t WHERE b > 10) tmp").unwrap();
    let t = translate(&q, &p, &TranslateOptions::default()).unwrap();
    assert!(t.preserve_row_ids);
    assert_eq!(t.filters.len(), 1);
    assert!(matches!(t.filters[0], ServerFilter::OpeCompare { .. }));
    assert_eq!(
        t.aggregates,
        vec![ServerAggregate::AsheSum {
            column: encnames::ashe("a_measure")
        }]
    );
}

#[test]
fn table2_row2_splashe_rewrite() {
    let p = plan();
    let q = parse("SELECT count(*) FROM t WHERE a = 10").unwrap();
    let t = translate(&q, &p, &TranslateOptions::default()).unwrap();
    // The frequent value 10 gets its own indicator column and no server filter.
    assert!(t.filters.is_empty());
    match &t.aggregates[0] {
        ServerAggregate::AsheSum { column } => assert!(column.contains("__ind_")),
        other => panic!("expected indicator sum, got {other:?}"),
    }
}

#[test]
fn table2_row3_group_by_inflation() {
    let p = plan();
    let q = parse("SELECT g, sum(a_measure) FROM t GROUP BY g").unwrap();
    let opts = TranslateOptions {
        workers: 100,
        expected_groups: Some(10),
    };
    let t = translate(&q, &p, &opts).unwrap();
    assert_eq!(t.group_inflation, 10);
    assert!(t.describe().contains("groupBy"));
}

#[test]
fn infrequent_splashe_value_keeps_det_filter() {
    let p = plan();
    let q = parse("SELECT SUM(a_measure) FROM t WHERE a = 30").unwrap();
    let t = translate(&q, &p, &TranslateOptions::default()).unwrap();
    assert_eq!(t.filters.len(), 1, "infrequent value needs the balanced DET filter");
    match &t.aggregates[0] {
        ServerAggregate::AsheSum { column } => assert!(column.ends_with("_others")),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn planner_choices_match_section_4_2() {
    let p = plan();
    assert!(matches!(
        p.column("a_measure").unwrap().encryption,
        EncryptionChoice::Ashe { .. }
    ));
    assert!(matches!(p.column("b").unwrap().encryption, EncryptionChoice::Ope));
    assert!(matches!(
        p.column("a").unwrap().encryption,
        EncryptionChoice::SplasheEnhanced { .. }
    ));
    assert!(matches!(p.column("g").unwrap().encryption, EncryptionChoice::Det));
    assert!(matches!(
        p.column("pub").unwrap().encryption,
        EncryptionChoice::Plaintext
    ));
}

#[test]
fn unsupported_operations_error_cleanly() {
    let p = plan();
    for sql in [
        "SELECT SUM(a_measure) FROM t WHERE a_measure = 5",
        "SELECT a_measure, COUNT(*) FROM t GROUP BY a_measure",
        "SELECT SUM(nope) FROM t",
        "SELECT MIN(a_measure) FROM t",
    ] {
        let q = parse(sql).unwrap();
        assert!(
            translate(&q, &p, &TranslateOptions::default()).is_err(),
            "{sql} should be rejected"
        );
    }
}
