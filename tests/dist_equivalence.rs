//! Distributed ≡ single-server equivalence.
//!
//! Every query here runs twice: in-process against one `SeabedServer`, and
//! through a `DistCoordinator` scattering shards over real `seabed-net`
//! workers on loopback sockets. The *encrypted* responses must be
//! byte-identical — group keys, ASHE sums, exact encoded ID lists, MIN/MAX
//! winners, result-byte accounting — and the decrypted rows must match, on
//! the sales fixture, the Ad-Analytics workload and the BDB tables.

use seabed_core::{PlainDataset, ResultValue, SeabedClient, SeabedServer, ServerResponse};
use seabed_dist::{spawn_worker, DistConfig, DistCoordinator};
use seabed_engine::{Cluster, ClusterConfig, Table};
use seabed_net::{NetServer, ServiceConfig};
use seabed_query::{parse, ColumnSpec, PlannerConfig, Query};
use seabed_workloads::{ad_analytics, bdb};

/// Stands up `n` workers plus a coordinator over `table`.
fn cluster_of(n: usize, table: Table) -> (Vec<NetServer>, DistCoordinator) {
    let workers: Vec<NetServer> = (0..n)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker must start"))
        .collect();
    let addrs: Vec<_> = workers.iter().map(|w| w.local_addr()).collect();
    let coordinator = DistCoordinator::connect(&addrs, table, DistConfig::default()).expect("coordinator must connect");
    (workers, coordinator)
}

/// Runs `sql` against both targets and asserts encrypted responses and
/// decrypted rows are identical.
fn assert_equivalent(client: &SeabedClient, server: &SeabedServer, coordinator: &DistCoordinator, sql: &str) {
    let (query, translated, filters) = client.prepare(server, sql).expect("prepare");
    let local: ServerResponse = match server.execute(&translated, &filters) {
        Ok(response) => response,
        Err(local_err) => {
            // A query the engine rejects (e.g. a non-u64 group key) must be
            // rejected identically by the distributed path — as the same
            // typed error, not a panic or a divergent answer.
            let dist_err = coordinator
                .execute(&translated, &filters)
                .expect_err("local rejected the query; dist must too");
            assert_eq!(local_err, dist_err, "error divergence for {sql}");
            return;
        }
    };
    let dist: ServerResponse = coordinator.execute(&translated, &filters).expect("dist execute");
    assert_eq!(local.groups, dist.groups, "encrypted groups diverged for {sql}");
    assert_eq!(local.result_bytes, dist.result_bytes, "result bytes diverged for {sql}");

    let local_rows = client
        .decrypt_response(&query, &translated, local)
        .expect("decrypt local")
        .rows;
    let dist_rows = client
        .decrypt_response(&query, &translated, dist)
        .expect("decrypt dist")
        .rows;
    assert_eq!(local_rows, dist_rows, "decrypted rows diverged for {sql}");
}

fn sales_fixture() -> (SeabedClient, SeabedServer, PlainDataset) {
    let n = 3_000usize;
    let countries = ["USA", "USA", "Canada", "India", "USA", "Canada", "Chile", "India"];
    let dataset = PlainDataset::new("sales")
        .with_text_column(
            "country",
            (0..n).map(|i| countries[i % countries.len()].to_string()).collect(),
        )
        .with_uint_column("revenue", (0..n as u64).map(|i| (i * 13) % 500).collect())
        .with_uint_column("ts", (0..n as u64).map(|i| (i * 7919) % 10_000).collect())
        .with_text_column("dept", (0..n).map(|i| format!("d{}", i % 5)).collect());
    let columns = vec![
        ColumnSpec::sensitive_with_distribution("country", dataset.distribution("country").expect("column exists")),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("ts"),
        ColumnSpec::sensitive("dept"),
    ];
    let samples: Vec<Query> = [
        "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
        "SELECT SUM(revenue) FROM sales WHERE ts >= 3",
        "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
        "SELECT MIN(ts) FROM sales",
        "SELECT AVG(revenue) FROM sales",
    ]
    .iter()
    .map(|sql| parse(sql).expect("sample"))
    .collect();
    let mut client = SeabedClient::create_plan(b"dist-eq", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 12, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
    (client, server, dataset)
}

#[test]
fn sales_fixture_is_byte_identical_across_three_workers() {
    let (client, server, _) = sales_fixture();
    let (workers, coordinator) = cluster_of(3, server.table().clone());
    for sql in [
        "SELECT SUM(revenue) FROM sales",
        "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
        "SELECT SUM(revenue) FROM sales WHERE country = 'India'",
        "SELECT COUNT(*) FROM sales WHERE ts < 4000",
        "SELECT SUM(revenue) FROM sales WHERE ts >= 6000",
        "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
        "SELECT MIN(ts) FROM sales",
        "SELECT MAX(ts) FROM sales",
        "SELECT AVG(revenue) FROM sales",
    ] {
        assert_equivalent(&client, &server, &coordinator, sql);
    }
    // The scatter really spread work: every worker answered shard queries.
    let summaries = coordinator.worker_summaries();
    assert_eq!(summaries.len(), 3);
    assert!(summaries.iter().all(|s| s.alive && s.queries > 0), "{summaries:?}");
    for w in workers {
        w.shutdown();
    }
}

/// With the hedge trigger forced to zero, *every* shard query abandons its
/// primary immediately and is answered by a replica — the most hostile
/// hedging schedule possible. The encrypted responses must still be
/// byte-identical to single-server execution on every query: hedge winners
/// merge exactly once and the abandoned primaries' late partials never leak
/// into any response.
#[test]
fn always_hedged_execution_is_byte_identical() {
    let (client, server, _) = sales_fixture();
    let workers: Vec<NetServer> = (0..3)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker must start"))
        .collect();
    let addrs: Vec<_> = workers.iter().map(|w| w.local_addr()).collect();
    let config = DistConfig::default().hedge_after(std::time::Duration::ZERO);
    let coordinator =
        DistCoordinator::connect(&addrs, server.table().clone(), config).expect("coordinator must connect");
    let mut hedged_total = 0;
    for sql in [
        "SELECT SUM(revenue) FROM sales",
        "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
        "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
        "SELECT MIN(ts) FROM sales",
        "SELECT MAX(ts) FROM sales",
        "SELECT AVG(revenue) FROM sales",
    ] {
        assert_equivalent(&client, &server, &coordinator, sql);
        hedged_total += coordinator.last_report().hedged_reads;
    }
    assert!(hedged_total > 0, "a zero hedge trigger must actually hedge");
    // Hedging routes around slow primaries without condemning them.
    assert!(coordinator.worker_summaries().iter().all(|s| s.alive));
    for w in workers {
        w.shutdown();
    }
}

/// Group inflation produces inflated (suffixed) group keys on the server;
/// the distributed merge must keep every inflated shard-group intact so the
/// proxy's de-inflation (and its exact de-inflated ID sets) sees identical
/// input.
#[test]
fn inflated_group_by_is_byte_identical() {
    let (mut client, server, dataset) = sales_fixture();
    client.translate_options.expected_groups = Some(1);
    let (workers, coordinator) = cluster_of(2, server.table().clone());
    let sql = "SELECT dept, SUM(revenue) FROM sales GROUP BY dept";
    let (query, translated, filters) = client.prepare(&server, sql).expect("prepare");
    assert!(translated.group_inflation > 1, "fixture must inflate groups");
    let local = server.execute(&translated, &filters).expect("local");
    let dist = coordinator.execute(&translated, &filters).expect("dist");
    assert_eq!(local.groups, dist.groups);

    // And the decrypted per-dept sums match a plaintext evaluation.
    let rows = client
        .decrypt_response(&query, &translated, dist)
        .expect("decrypt")
        .rows;
    let dept = dataset.column("dept").expect("dept");
    let revenue = dataset.column("revenue").expect("revenue");
    for row in rows {
        let ResultValue::Text(key) = &row[0] else {
            panic!("expected a decrypted dept key, got {row:?}");
        };
        let expected: u64 = (0..dataset.num_rows())
            .filter(|&i| dept.text_at(i) == key.as_str())
            .map(|i| revenue.u64_at(i).unwrap_or_default())
            .sum();
        assert_eq!(row[1], ResultValue::UInt(expected), "dept {key}");
    }
    for w in workers {
        w.shutdown();
    }
}

/// The proxy's `prepare`/`query`/`decrypt_response` surface works unchanged
/// against the coordinator (`QueryTarget`), end to end through real
/// encryption.
#[test]
fn seabed_client_targets_the_coordinator_directly() {
    let (client, server, dataset) = sales_fixture();
    let (workers, coordinator) = cluster_of(2, server.table().clone());

    let revenue = dataset.column("revenue").expect("revenue");
    let expected: u64 = (0..dataset.num_rows())
        .map(|i| revenue.u64_at(i).unwrap_or_default())
        .sum();
    // Same call shape as against an in-process server.
    let result = client
        .query(&coordinator, "SELECT SUM(revenue) FROM sales")
        .expect("query via coordinator");
    assert_eq!(result.rows, vec![vec![ResultValue::UInt(expected)]]);
    assert_eq!(coordinator.schema(), &server.table().schema);
    for w in workers {
        w.shutdown();
    }
}

#[test]
fn ad_analytics_workload_is_byte_identical() {
    let mut rng = rand::rng();
    let dataset = ad_analytics::generate(&mut rng, 3_000);
    let queries = ad_analytics::performance_query_set(&mut rng);
    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if n == "measure00" || n == "measure01" {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let samples: Vec<Query> = queries.iter().map(|q| parse(&q.sql).expect("sample")).collect();
    let mut client = SeabedClient::create_plan(b"dist-ada", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 8, &mut rng);
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
    let (workers, coordinator) = cluster_of(4, encrypted.table.clone());
    for q in queries.iter().take(6) {
        assert_equivalent(&client, &server, &coordinator, &q.sql);
    }
    for w in workers {
        w.shutdown();
    }
}

#[test]
fn bdb_workload_is_byte_identical() {
    let mut rng = rand::rng();
    let tables = bdb::generate(&mut rng, 1_500, 2_500);
    for (dataset, sensitive) in [
        (&tables.rankings, vec!["pageRank", "avgDuration"]),
        (
            &tables.uservisits,
            vec!["adRevenue", "duration", "visitDate", "ipPrefix"],
        ),
    ] {
        let specs: Vec<ColumnSpec> = dataset
            .columns
            .iter()
            .map(|(n, _)| {
                if sensitive.contains(&n.as_str()) {
                    ColumnSpec::sensitive(n)
                } else {
                    ColumnSpec::public(n)
                }
            })
            .collect();
        let samples: Vec<Query> = bdb::queries()
            .iter()
            .filter(|q| dataset.name == q.table)
            .map(|q| parse(&q.sql).expect("sample"))
            .collect();
        let mut client = SeabedClient::create_plan(b"dist-bdb", &specs, &samples, &PlannerConfig::default());
        let encrypted = client.encrypt_dataset(dataset, 6, &mut rng);
        let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
        let (workers, coordinator) = cluster_of(2, encrypted.table.clone());
        for q in bdb::queries().iter().filter(|q| q.table == dataset.name) {
            // Scan queries (Q1*) have no aggregate; approximate as COUNT as
            // the bench harness does.
            let sql = if q.name.starts_with("Q1") {
                q.sql.replace("SELECT pageURL, pageRank", "SELECT COUNT(*)")
            } else {
                q.sql.clone()
            };
            let prepared = client.prepare(&server, &sql);
            if prepared.is_err() {
                continue; // unsupported under this plan, same on both paths
            }
            assert_equivalent(&client, &server, &coordinator, &sql);
        }
        for w in workers {
            w.shutdown();
        }
    }
}
