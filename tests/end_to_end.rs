//! End-to-end integration test: plan -> encrypt -> query across all schemes.

use seabed_core::{PlainDataset, ResultValue, SeabedClient, SeabedServer};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_query::{parse, ColumnSpec, PlannerConfig};
use std::collections::HashMap;

fn build_world(rows: usize) -> (SeabedClient, SeabedServer, PlainDataset) {
    let countries = ["USA", "Canada", "India", "Chile", "Japan"];
    let country_col: Vec<String> = (0..rows)
        .map(|i| {
            // Skewed: USA and Canada dominate.
            match i % 10 {
                0..=4 => "USA".to_string(),
                5..=7 => "Canada".to_string(),
                8 => countries[2 + (i / 10) % 3].to_string(),
                _ => countries[2 + (i / 7) % 3].to_string(),
            }
        })
        .collect();
    let dataset = PlainDataset::new("sales")
        .with_text_column("country", country_col)
        .with_uint_column("revenue", (0..rows as u64).map(|i| i % 500 + 1).collect())
        .with_uint_column("clicks", (0..rows as u64).map(|i| i % 7).collect())
        .with_uint_column("ts", (0..rows as u64).collect())
        .with_text_column("dept", (0..rows).map(|i| format!("d{}", i % 4)).collect());
    let columns = vec![
        ColumnSpec::sensitive_with_distribution("country", dataset.distribution("country").unwrap()),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("clicks"),
        ColumnSpec::sensitive("ts"),
        ColumnSpec::sensitive("dept"),
    ];
    let samples: Vec<_> = [
        "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
        "SELECT SUM(revenue) FROM sales WHERE ts >= 100",
        "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
        "SELECT VARIANCE(clicks) FROM sales",
        "SELECT AVG(revenue) FROM sales",
    ]
    .iter()
    .map(|s| parse(s).unwrap())
    .collect();
    let mut client = SeabedClient::create_plan(b"it-master", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 8, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(16)));
    (client, server, dataset)
}

fn plain_sum<F: Fn(usize) -> bool>(ds: &PlainDataset, measure: &str, pred: F) -> u64 {
    let col = ds.column(measure).unwrap();
    (0..ds.num_rows())
        .filter(|&i| pred(i))
        .map(|i| col.u64_at(i).unwrap())
        .sum()
}

#[test]
fn global_and_filtered_sums_match_plaintext() {
    let (client, server, ds) = build_world(2000);
    let total = client.query(&server, "SELECT SUM(revenue) FROM sales").unwrap();
    assert_eq!(total.rows[0][0], ResultValue::UInt(plain_sum(&ds, "revenue", |_| true)));

    let country = ds.column("country").unwrap();
    for value in ["USA", "Canada", "India", "Chile", "Japan"] {
        let sql = format!("SELECT SUM(revenue) FROM sales WHERE country = '{value}'");
        let result = client.query(&server, &sql).unwrap();
        let expected = plain_sum(&ds, "revenue", |i| country.text_at(i) == value);
        assert_eq!(result.rows[0][0], ResultValue::UInt(expected), "country {value}");
    }
}

#[test]
fn range_filters_and_counts_match_plaintext() {
    let (client, server, ds) = build_world(1500);
    let ts = ds.column("ts").unwrap();
    let result = client
        .query(&server, "SELECT SUM(revenue) FROM sales WHERE ts >= 700")
        .unwrap();
    let expected = plain_sum(&ds, "revenue", |i| ts.u64_at(i).unwrap() >= 700);
    assert_eq!(result.rows[0][0], ResultValue::UInt(expected));

    let count = client
        .query(&server, "SELECT COUNT(*) FROM sales WHERE ts < 300")
        .unwrap();
    assert_eq!(count.rows[0][0], ResultValue::UInt(300));
}

#[test]
fn group_by_matches_plaintext_per_group() {
    let (client, server, ds) = build_world(1200);
    let result = client
        .query(&server, "SELECT dept, SUM(revenue) FROM sales GROUP BY dept")
        .unwrap();
    assert_eq!(result.rows.len(), 4);
    let dept = ds.column("dept").unwrap();
    let mut expected: HashMap<String, u64> = HashMap::new();
    for i in 0..ds.num_rows() {
        *expected.entry(dept.text_at(i)).or_insert(0) += ds.column("revenue").unwrap().u64_at(i).unwrap();
    }
    for row in &result.rows {
        let ResultValue::Text(key) = &row[0] else {
            panic!("expected text key")
        };
        assert_eq!(row[1].as_u64().unwrap(), expected[key], "group {key}");
    }
}

#[test]
fn avg_and_variance_match_plaintext() {
    let (client, server, ds) = build_world(900);
    let revenue: Vec<f64> = (0..ds.num_rows())
        .map(|i| ds.column("revenue").unwrap().u64_at(i).unwrap() as f64)
        .collect();
    let mean = revenue.iter().sum::<f64>() / revenue.len() as f64;
    let avg = client.query(&server, "SELECT AVG(revenue) FROM sales").unwrap();
    assert!((avg.rows[0][0].as_f64() - mean).abs() < 1e-9);

    let clicks: Vec<f64> = (0..ds.num_rows())
        .map(|i| ds.column("clicks").unwrap().u64_at(i).unwrap() as f64)
        .collect();
    let cmean = clicks.iter().sum::<f64>() / clicks.len() as f64;
    let cvar = clicks.iter().map(|v| (v - cmean) * (v - cmean)).sum::<f64>() / clicks.len() as f64;
    let var = client.query(&server, "SELECT VARIANCE(clicks) FROM sales").unwrap();
    assert!(
        (var.rows[0][0].as_f64() - cvar).abs() < 1e-6,
        "variance {} vs {}",
        var.rows[0][0].as_f64(),
        cvar
    );
}

#[test]
fn server_never_sees_plaintext_columns() {
    let (_, server, _) = build_world(500);
    let names: Vec<&str> = server.table().schema.fields.iter().map(|f| f.name.as_str()).collect();
    for leaked in ["revenue", "clicks", "ts", "country", "dept"] {
        assert!(!names.contains(&leaked), "plaintext column {leaked} must not be stored");
    }
}

#[test]
fn timings_are_populated() {
    let (client, server, _) = build_world(800);
    let result = client.query(&server, "SELECT SUM(revenue) FROM sales").unwrap();
    assert!(result.timings.server > std::time::Duration::ZERO);
    assert!(result.result_bytes > 0);
    assert!(
        result.client_prf_evals >= 2,
        "at least one telescoped run must be decrypted"
    );
}
