//! Adversarial decode suite for the `seabed-net` wire format.
//!
//! The server decodes frames from untrusted peers (and the proxy decodes
//! frames from the untrusted server), so the wire layer gets the same
//! treatment the storage layer got in PR 2: truncation at every byte
//! boundary, forged and oversized length prefixes, unknown protocol versions
//! and plain garbage must all yield typed [`SeabedError::Wire`] errors —
//! never a panic, never a multi-gigabyte allocation — and randomized
//! round-trips must be lossless.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seabed::core::{EncryptedAggregate, GroupResult, PhysicalFilter, ServerResponse};
use seabed::encoding::IdListEncoding;
use seabed::engine::{ExecStats, OperatorProfile};
use seabed::error::SeabedError;
use seabed::net::wire::{decode_frame, encode_frame, Frame, DEFAULT_MAX_FRAME_LEN, HEADER_LEN};
use seabed::query::{
    ClientPostStep, CompareOp, GroupByColumn, Literal, Predicate, ServerAggregate, ServerFilter, SupportCategory,
    TranslatedQuery,
};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Randomized structure builders (driven by seeds from proptest)
// ---------------------------------------------------------------------------

fn random_string(rng: &mut StdRng) -> String {
    let len = rng.random_range(0..12usize);
    (0..len)
        .map(|_| char::from(b'a' + (rng.random_range(0..26u64) as u8)))
        .collect()
}

fn random_op(rng: &mut StdRng) -> CompareOp {
    [
        CompareOp::Eq,
        CompareOp::NotEq,
        CompareOp::Lt,
        CompareOp::LtEq,
        CompareOp::Gt,
        CompareOp::GtEq,
    ][rng.random_range(0..6usize)]
}

fn random_query(rng: &mut StdRng) -> TranslatedQuery {
    let filters = (0..rng.random_range(0..4usize))
        .map(|_| match rng.random_range(0..3u64) {
            0 => ServerFilter::Plain(Predicate {
                column: random_string(rng),
                op: random_op(rng),
                value: if rng.random_range(0..2u64) == 0 {
                    Literal::Integer(rng.random::<u64>())
                } else {
                    Literal::Text(random_string(rng))
                },
            }),
            1 => ServerFilter::DetEquals {
                column: random_string(rng),
                value: random_string(rng),
            },
            _ => ServerFilter::OpeCompare {
                column: random_string(rng),
                op: random_op(rng),
                value: rng.random::<u64>(),
            },
        })
        .collect();
    let aggregates = (0..rng.random_range(1..4usize))
        .map(|_| match rng.random_range(0..4u64) {
            0 => ServerAggregate::AsheSum {
                column: random_string(rng),
            },
            1 => ServerAggregate::CountRows,
            2 => ServerAggregate::OpeMin {
                column: random_string(rng),
            },
            _ => ServerAggregate::OpeMax {
                column: random_string(rng),
            },
        })
        .collect();
    let group_by = (0..rng.random_range(0..3usize))
        .map(|_| GroupByColumn {
            column: random_string(rng),
            physical_column: random_string(rng),
            encrypted: rng.random_range(0..2u64) == 0,
        })
        .collect();
    let client_post = (0..rng.random_range(0..3usize))
        .map(|_| match rng.random_range(0..4u64) {
            0 => ClientPostStep::Divide {
                numerator: rng.random_range(0..8u64) as usize,
                denominator: rng.random_range(0..8u64) as usize,
            },
            1 => ClientPostStep::Variance {
                sum_squares: rng.random_range(0..8u64) as usize,
                sum: rng.random_range(0..8u64) as usize,
                count: rng.random_range(0..8u64) as usize,
            },
            2 => ClientPostStep::SqrtOfVariance {
                variance_step: rng.random_range(0..8u64) as usize,
            },
            _ => ClientPostStep::MergeInflatedGroups,
        })
        .collect();
    let params = (0..rng.random_range(0..3usize))
        .map(|_| seabed::query::ParamSlot {
            filter_index: rng.random_range(0..8u64) as usize,
            column: random_string(rng),
            kind: [
                seabed::query::ParamKind::Plain,
                seabed::query::ParamKind::Det,
                seabed::query::ParamKind::Ope,
            ][rng.random_range(0..3usize)],
        })
        .collect();
    TranslatedQuery {
        base_table: random_string(rng),
        filters,
        aggregates,
        group_by,
        group_inflation: rng.random_range(1..64u64) as u32,
        client_post,
        preserve_row_ids: rng.random_range(0..2u64) == 0,
        category: [
            SupportCategory::ServerOnly,
            SupportCategory::ClientPreProcessing,
            SupportCategory::ClientPostProcessing,
            SupportCategory::TwoRoundTrips,
        ][rng.random_range(0..4usize)],
        params,
    }
}

fn random_filters(rng: &mut StdRng) -> Vec<PhysicalFilter> {
    (0..rng.random_range(0..5usize))
        .map(|_| match rng.random_range(0..4u64) {
            0 => PhysicalFilter::PlainU64 {
                column: rng.random_range(0..100u64) as usize,
                op: random_op(rng),
                value: rng.random::<u64>(),
            },
            1 => PhysicalFilter::PlainText {
                column: rng.random_range(0..100u64) as usize,
                value: random_string(rng),
            },
            2 => PhysicalFilter::DetTag {
                column: rng.random_range(0..100u64) as usize,
                tag: rng.random::<u64>(),
            },
            _ => {
                let len = rng.random_range(0..80usize);
                let mut symbols = vec![0u8; len];
                rng.fill(&mut symbols);
                PhysicalFilter::Ope {
                    column: rng.random_range(0..100u64) as usize,
                    op: random_op(rng),
                    ciphertext: seabed::crypto::OreCiphertext { symbols },
                }
            }
        })
        .collect()
}

fn random_operators(rng: &mut StdRng) -> Vec<OperatorProfile> {
    (0..rng.random_range(0..4usize))
        .map(|_| OperatorProfile {
            label: random_string(rng),
            rows_in: rng.random::<u64>(),
            rows_out: rng.random::<u64>(),
            batches: rng.random::<u64>(),
            nanos: rng.random::<u64>(),
        })
        .collect()
}

fn random_response(rng: &mut StdRng) -> ServerResponse {
    let encodings = [
        IdListEncoding::RangesVb,
        IdListEncoding::RangesVbDiff,
        IdListEncoding::RangesVbDiffDeflateCompact,
        IdListEncoding::RangesVbDiffDeflateFast,
        IdListEncoding::VbDiff,
        IdListEncoding::Bitmap,
    ];
    let groups = (0..rng.random_range(0..5usize))
        .map(|_| {
            let key = (0..rng.random_range(0..3usize)).map(|_| rng.random::<u64>()).collect();
            let aggregates = (0..rng.random_range(0..4usize))
                .map(|_| match rng.random_range(0..3u64) {
                    0 => {
                        let len = rng.random_range(0..64usize);
                        let mut id_list = vec![0u8; len];
                        rng.fill(&mut id_list);
                        EncryptedAggregate::AsheSum {
                            value: rng.random::<u64>(),
                            id_list,
                            encoding: encodings[rng.random_range(0..encodings.len() as u64) as usize],
                        }
                    }
                    1 => EncryptedAggregate::Count {
                        rows: rng.random::<u64>(),
                    },
                    _ => EncryptedAggregate::Extreme {
                        value_word: rng.random::<u64>(),
                        row_id: if rng.random_range(0..2u64) == 0 {
                            None
                        } else {
                            Some(rng.random::<u64>())
                        },
                    },
                })
                .collect();
            GroupResult { key, aggregates }
        })
        .collect();
    ServerResponse {
        groups,
        stats: ExecStats {
            tasks: rng.random_range(0..1000u64) as usize,
            total_task_time: Duration::from_nanos(rng.random::<u64>() >> 20),
            max_task_time: Duration::from_nanos(rng.random::<u64>() >> 20),
            simulated_server_time: Duration::from_nanos(rng.random::<u64>() >> 20),
            bytes_to_driver: rng.random_range(0..1_000_000u64) as usize,
            wall_time: Duration::from_nanos(rng.random::<u64>() >> 20),
            operators: random_operators(rng),
        },
        result_bytes: rng.random_range(0..1_000_000u64) as usize,
    }
}

// ---------------------------------------------------------------------------
// Round-trip property tests
// ---------------------------------------------------------------------------

mod roundtrip {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `decode(encode(request)) == redact(request)` over randomized
        /// queries and physical filters: everything round-trips losslessly
        /// except the plaintext DET/OPE predicate literals, which the wire
        /// format redacts by construction (the server only reads the
        /// encrypted `PhysicalFilter`s). A second pass over the redacted
        /// image is a fixed point.
        #[test]
        fn request_roundtrip(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let query = random_query(&mut rng);
            let filters = random_filters(&mut rng);
            let trace_id = rng.random::<u64>();
            let analyze = rng.random_range(0..2u64) == 1;
            let frame = Frame::Request { query: query.clone(), filters: filters.clone(), trace_id, analyze };
            let expected = Frame::Request { query: seabed::net::wire::redact_query(&query), filters, trace_id, analyze };
            let bytes = encode_frame(&frame, DEFAULT_MAX_FRAME_LEN).expect("encode");
            prop_assert_eq!(decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN).expect("decode"), expected.clone());
            let redacted_bytes = encode_frame(&expected, DEFAULT_MAX_FRAME_LEN).expect("encode");
            prop_assert_eq!(decode_frame(&redacted_bytes, DEFAULT_MAX_FRAME_LEN).expect("decode"), expected);
        }

        /// `decode(encode(response)) == response` over randomized responses.
        #[test]
        fn response_roundtrip(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let frame = Frame::Response(random_response(&mut rng));
            let bytes = encode_frame(&frame, DEFAULT_MAX_FRAME_LEN).expect("encode");
            prop_assert_eq!(decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN).expect("decode"), frame);
        }

        /// Arbitrary garbage after a valid header must decode to a typed
        /// error (or, astronomically rarely, a valid payload) — never panic.
        /// Sweeps every known frame kind (1–18, including the PREPARE /
        /// EXECUTE statement kinds, the shard unload pair, and the metrics
        /// scrape pair) plus a margin of unknown ones.
        #[test]
        fn garbage_payloads_never_panic(seed in any::<u64>(), len in 0usize..512) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut payload = vec![0u8; len];
            rng.fill(&mut payload);
            for kind in 0u8..22 {
                let _ = seabed::net::wire::decode_payload(kind, &payload);
            }
        }

        /// The prepared-statement frames round-trip losslessly (modulo the
        /// structural DET/OPE redaction requests already have).
        #[test]
        fn statement_frame_roundtrip(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let query = random_query(&mut rng);
            let prepare = Frame::PrepareStatement { query: seabed::net::wire::redact_query(&query) };
            let bytes = encode_frame(&prepare, DEFAULT_MAX_FRAME_LEN).expect("encode");
            prop_assert_eq!(decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN).expect("decode"), prepare);

            let handle = Frame::StatementPrepared { handle: rng.random::<u64>() };
            let bytes = encode_frame(&handle, DEFAULT_MAX_FRAME_LEN).expect("encode");
            prop_assert_eq!(decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN).expect("decode"), handle);

            let execute = Frame::ExecuteStatement {
                handle: rng.random::<u64>(),
                trace_id: rng.random::<u64>(),
                filters: random_filters(&mut rng),
            };
            let bytes = encode_frame(&execute, DEFAULT_MAX_FRAME_LEN).expect("encode");
            prop_assert_eq!(decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN).expect("decode"), execute);
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic adversarial cases
// ---------------------------------------------------------------------------

fn sample_frames() -> Vec<Frame> {
    let mut rng = StdRng::seed_from_u64(0x5eabed);
    vec![
        Frame::Request {
            // Redacted form: the encode/decode image of a request (the wire
            // strips DET/OPE literals), so full-frame decodes compare equal.
            query: seabed::net::wire::redact_query(&random_query(&mut rng)),
            filters: random_filters(&mut rng),
            trace_id: 0x5eab_ed01,
            analyze: true,
        },
        Frame::Response(random_response(&mut rng)),
        Frame::ShardQuery {
            epoch: 0xe9_0c4,
            table_id: 1,
            shard: 3,
            seq: 77,
            trace_id: 0x5eab_ed02,
            analyze: true,
            query: seabed::net::wire::redact_query(&random_query(&mut rng)),
            filters: random_filters(&mut rng),
        },
        Frame::ShardPartial {
            epoch: 0xe9_0c4,
            table_id: 1,
            shard: 3,
            seq: 77,
            partial: seabed::core::PartialResponse {
                groups: seabed::engine::merge::PartialGroups::new(),
                stats: ExecStats {
                    operators: vec![OperatorProfile {
                        label: "filter:det:dept__det".to_string(),
                        rows_in: 1000,
                        rows_out: 10,
                        batches: 2,
                        nanos: 12_345,
                    }],
                    ..ExecStats::default()
                },
            },
        },
        Frame::Error(SeabedError::engine("boom")),
        Frame::Error(SeabedError::StaleStatement(0xdead_beef)),
        Frame::SchemaRequest,
        Frame::PrepareStatement {
            query: seabed::net::wire::redact_query(&random_query(&mut rng)),
        },
        Frame::StatementPrepared { handle: u64::MAX },
        Frame::ExecuteStatement {
            handle: 42,
            trace_id: 7,
            filters: random_filters(&mut rng),
        },
        Frame::MetricsRequest {
            include_traces: true,
            include_events: true,
        },
        Frame::MetricsSnapshot {
            metrics: seabed::obs::MetricsSnapshot {
                counters: vec![("net_requests_served".to_string(), 9)],
                gauges: vec![("shard_store_size".to_string(), 3)],
                histograms: vec![(
                    "net_request_ns".to_string(),
                    seabed::obs::HistogramSnapshot {
                        count: 2,
                        sum: 300,
                        max: 200,
                        buckets: vec![(7, 1), (8, 1)],
                    },
                )],
            },
            traces: vec![seabed::obs::QueryTrace {
                trace_id: 0xfeed,
                statement_id: 0xbeef,
                node: "worker:1".to_string(),
                spans: vec![seabed::obs::TraceSpan {
                    name: "shard-execute".to_string(),
                    start_ns: 10,
                    duration_ns: 90,
                }],
            }],
            events: vec![seabed::obs::QueryEvent {
                trace_id: 0xfeed,
                statement_id: 0xbeef,
                node: "coordinator".to_string(),
                plan: "aggregate\n  scan sales".to_string(),
                operators: vec![seabed::obs::EventOperator {
                    label: "filter:det:dept__det".to_string(),
                    rows_in: 1000,
                    rows_out: 10,
                    batches: 2,
                    nanos: 12_345,
                }],
                total_ns: 123_456,
                slow: true,
                outcome: "ok".to_string(),
            }],
        },
    ]
}

/// Every strict prefix of a well-formed frame must be rejected with a typed
/// error — truncation is detectable at every byte boundary — and must never
/// panic.
#[test]
fn every_truncation_is_rejected_without_panic() {
    for frame in sample_frames() {
        let bytes = encode_frame(&frame, DEFAULT_MAX_FRAME_LEN).expect("encode");
        assert_eq!(
            decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN).expect("full frame decodes"),
            frame
        );
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut], DEFAULT_MAX_FRAME_LEN) {
                Err(SeabedError::Wire(_)) => {}
                other => panic!(
                    "prefix of {cut}/{} bytes: expected a wire error, got {other:?}",
                    bytes.len()
                ),
            }
        }
    }
}

/// A forged frame-level length prefix far beyond the limit is rejected at the
/// header, before any allocation could happen.
#[test]
fn oversized_frame_length_is_rejected_at_the_header() {
    let mut bytes = encode_frame(&Frame::SchemaRequest, DEFAULT_MAX_FRAME_LEN).expect("encode");
    bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_frame(&bytes, DEFAULT_MAX_FRAME_LEN),
        Err(SeabedError::Wire(_))
    ));
    // Same at a smaller configured limit: a payload of limit+1 is refused.
    let frame = Frame::Error(SeabedError::engine("x".repeat(128)));
    let bytes = encode_frame(&frame, DEFAULT_MAX_FRAME_LEN).expect("encode");
    assert!(matches!(decode_frame(&bytes, 64), Err(SeabedError::Wire(_))));
}

/// Forged *interior* counts (a group vector claiming u64::MAX entries) must
/// fail cleanly: the capped pre-allocation cannot balloon, and the element
/// reads run out of bytes.
#[test]
fn forged_interior_counts_are_rejected() {
    let response = Frame::Response(ServerResponse {
        groups: vec![GroupResult {
            key: vec![1, 2, 3],
            aggregates: vec![EncryptedAggregate::Count { rows: 9 }],
        }],
        stats: ExecStats::default(),
        result_bytes: 64,
    });
    let bytes = encode_frame(&response, DEFAULT_MAX_FRAME_LEN).expect("encode");
    // The first payload byte is the varint group count; forge it into a
    // 10-byte maximal varint by splicing.
    let mut forged = bytes[..HEADER_LEN].to_vec();
    forged.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]); // u64::MAX
    forged.extend_from_slice(&bytes[HEADER_LEN + 1..]);
    // Patch the frame length to match the new payload size.
    let new_len = (forged.len() - HEADER_LEN) as u32;
    forged[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&new_len.to_le_bytes());
    assert!(matches!(
        decode_frame(&forged, DEFAULT_MAX_FRAME_LEN),
        Err(SeabedError::Wire(_))
    ));
}

/// A forged count on the v4 *trailing* vectors — the per-operator profile
/// list inside exec stats and the query-event list of a metrics snapshot —
/// must fail cleanly too: both are length-prefixed with capped
/// pre-allocation, so a claimed u64::MAX entries cannot balloon and the
/// element reads run out of bytes.
#[test]
fn forged_operator_and_event_counts_are_rejected() {
    let maximal_varint = [0xffu8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
    let patch_len = |bytes: &mut Vec<u8>| {
        let new_len = (bytes.len() - HEADER_LEN) as u32;
        bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&new_len.to_le_bytes());
    };

    // Response: the operators vector is the last field of the exec stats,
    // followed only by the one-byte `result_bytes` varint — the payload tail
    // is `..., operators-count=0, result_bytes=64`. Splice the forged count
    // in place of the zero.
    let response = Frame::Response(ServerResponse {
        groups: Vec::new(),
        stats: ExecStats::default(),
        result_bytes: 64,
    });
    let bytes = encode_frame(&response, DEFAULT_MAX_FRAME_LEN).expect("encode");
    let mut forged = bytes[..bytes.len() - 2].to_vec();
    forged.extend_from_slice(&maximal_varint);
    forged.push(bytes[bytes.len() - 1]);
    patch_len(&mut forged);
    assert!(matches!(
        decode_frame(&forged, DEFAULT_MAX_FRAME_LEN),
        Err(SeabedError::Wire(_))
    ));

    // MetricsSnapshot: events are the last vector; same splice at the tail.
    let snapshot = Frame::MetricsSnapshot {
        metrics: seabed::obs::MetricsSnapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        },
        traces: Vec::new(),
        events: Vec::new(),
    };
    let bytes = encode_frame(&snapshot, DEFAULT_MAX_FRAME_LEN).expect("encode");
    let mut forged = bytes[..bytes.len() - 1].to_vec();
    forged.extend_from_slice(&maximal_varint);
    patch_len(&mut forged);
    assert!(matches!(
        decode_frame(&forged, DEFAULT_MAX_FRAME_LEN),
        Err(SeabedError::Wire(_))
    ));
}

/// The analyze flag and the profile/event payloads are a breaking layout
/// change, so they came with a protocol version bump: this build speaks v4,
/// and a frame stamped with the previous version is refused at the header.
#[test]
fn analyze_extensions_bumped_the_protocol_version() {
    use seabed::net::wire::PROTOCOL_VERSION;
    assert_eq!(PROTOCOL_VERSION, 4, "v4 added analyze flags, operator profiles, events");
    let good = encode_frame(&Frame::SchemaRequest, DEFAULT_MAX_FRAME_LEN).expect("encode");
    let mut v3 = good.clone();
    v3[4..6].copy_from_slice(&3u16.to_le_bytes());
    assert!(matches!(
        decode_frame(&v3, DEFAULT_MAX_FRAME_LEN),
        Err(SeabedError::Wire(_))
    ));
}

/// Unknown protocol versions and unknown frame kinds yield typed errors.
#[test]
fn unknown_version_and_kind_are_typed_errors() {
    use seabed::net::wire::PROTOCOL_VERSION;
    let good = encode_frame(&Frame::SchemaRequest, DEFAULT_MAX_FRAME_LEN).expect("encode");
    for version in [0u16, PROTOCOL_VERSION - 1, PROTOCOL_VERSION + 1, 7, u16::MAX] {
        let mut bad = good.clone();
        bad[4..6].copy_from_slice(&version.to_le_bytes());
        let outcome = decode_frame(&bad, DEFAULT_MAX_FRAME_LEN);
        match outcome {
            Err(SeabedError::Wire(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("version {version}: {other:?}"),
        }
    }
    // Kind 0, the first unassigned kind (19), and far-out values. Known kinds
    // with a garbage (empty) payload fail at payload decode instead, which
    // the proptest sweep covers.
    for kind in [0u8, 19, 99, 255] {
        let mut bad = good.clone();
        bad[6] = kind;
        assert!(matches!(
            decode_frame(&bad, DEFAULT_MAX_FRAME_LEN),
            Err(SeabedError::Wire(_))
        ));
    }
}

/// Pure garbage — wrong magic, random bytes, empty input — never panics and
/// always reports a wire error.
#[test]
fn garbage_streams_are_typed_errors() {
    let mut rng = StdRng::seed_from_u64(1234);
    assert!(matches!(
        decode_frame(&[], DEFAULT_MAX_FRAME_LEN),
        Err(SeabedError::Wire(_))
    ));
    for len in [1usize, 4, 10, 11, 64, 300] {
        for _ in 0..50 {
            let mut blob = vec![0u8; len];
            rng.fill(&mut blob);
            // Garbage almost never carries the magic; force a couple of
            // magic-prefixed blobs too so the payload paths get fuzzed.
            if rng.random_range(0..2u64) == 0 && len >= 4 {
                blob[..4].copy_from_slice(b"SBWF");
            }
            let _ = decode_frame(&blob, DEFAULT_MAX_FRAME_LEN);
        }
    }
}

/// The live service survives an adversarial volley: garbage connections may
/// be dropped, but the process keeps serving fresh, well-formed clients.
#[test]
fn live_server_survives_adversarial_volley() {
    use seabed::core::{PlainDataset, SeabedClient, SeabedServer};
    use seabed::engine::{Cluster, ClusterConfig};
    use seabed::net::{NetServer, RemoteSeabedClient, ServiceConfig};
    use seabed::query::{parse, ColumnSpec, PlannerConfig};
    use std::io::Write;

    let dataset = PlainDataset::new("t").with_uint_column("m", (0..200u64).collect());
    let columns = vec![ColumnSpec::sensitive("m")];
    let samples = vec![parse("SELECT SUM(m) FROM t").expect("parse")];
    let mut client = SeabedClient::create_plan(b"volley", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 4, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(4)));
    let net = NetServer::serve(server, "127.0.0.1:0", ServiceConfig::default()).expect("serve");

    let mut rng = StdRng::seed_from_u64(77);
    for round in 0..20 {
        let mut stream = std::net::TcpStream::connect(net.local_addr()).expect("connect");
        let len = rng.random_range(1..200u64) as usize;
        let mut blob = vec![0u8; len];
        rng.fill(&mut blob);
        if round % 3 == 0 && len >= 11 {
            // A valid header with a garbage payload exercises the decode path
            // rather than the magic check.
            blob[..4].copy_from_slice(b"SBWF");
            blob[4..6].copy_from_slice(&seabed::net::wire::PROTOCOL_VERSION.to_le_bytes());
            blob[6] = 1; // request
            blob[7..11].copy_from_slice(&((len - 11) as u32).to_le_bytes());
        }
        let _ = stream.write_all(&blob);
        // Drop the connection with the garbage half-digested.
    }

    // The service still answers a real client, end to end.
    let remote = RemoteSeabedClient::connect(net.local_addr(), client).expect("connect after volley");
    let result = remote.query("SELECT SUM(m) FROM t").expect("query after volley");
    assert_eq!(result.rows[0][0], seabed::core::ResultValue::UInt((0..200u64).sum()));
    net.shutdown();
}
