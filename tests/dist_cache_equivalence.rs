//! Warm partial-cache executions ≡ cold scatter/gather, byte for byte.
//!
//! The coordinator's statement-keyed partial cache is a pure throughput
//! device: a repeated prepared execute may skip the scatter for shards whose
//! partials are cached, but the merged encrypted response — group keys, ASHE
//! sums, exact encoded ID lists, result-byte accounting — must be identical
//! to what a cold scatter/gather produces. This file pins that on the sales
//! fixture, the Ad-Analytics workload and the BDB `rankings` table: a
//! cache-disabled coordinator (capacity 0) provides the cold reference, a
//! default coordinator answers the same statements warm, and every warm
//! response (and its decryption) must match. Cache keying by bound-filter
//! hash is exercised by re-binding different literals.

use seabed_core::{SeabedClient, SeabedSession, ServerResponse};
use seabed_dist::{spawn_worker, DistConfig, DistCoordinator};
use seabed_engine::Table;
use seabed_net::{NetServer, ServiceConfig};
use seabed_query::{parse, ColumnSpec, Literal, PlannerConfig, Query};
use seabed_workloads::{ad_analytics, bdb};
use std::net::SocketAddr;

/// One statement to compare: parameterized SQL plus its bindings.
struct Case {
    sql: &'static str,
    params: Vec<Literal>,
}

fn case(sql: &'static str, params: Vec<Literal>) -> Case {
    Case { sql, params }
}

/// Two real workers for one coordinator. A worker only hosts one coordinator
/// generation at a time (the epoch handshake evicts prior shards), so each
/// coordinator in this file gets a fresh pair.
fn spawn_pair() -> (Vec<NetServer>, Vec<SocketAddr>) {
    let workers: Vec<NetServer> = (0..2)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker must start"))
        .collect();
    let addrs = workers.iter().map(|w| w.local_addr()).collect();
    (workers, addrs)
}

/// For every case: runs it through a cache-disabled coordinator (the cold
/// scatter/gather reference), then through a caching coordinator — once cold
/// to populate, then repeatedly warm — asserting byte-identical encrypted
/// responses, identical decrypted rows, and that the warm executes really
/// were answered from the cache.
fn assert_warm_equals_cold(table_name: &str, client: &SeabedClient, table: &Table, cases: &[Case]) {
    // Cold reference: capacity 0 disables the cache entirely.
    let (workers, addrs) = spawn_pair();
    let cold = DistCoordinator::connect(&addrs, table.clone(), DistConfig::default().partial_cache_capacity(0))
        .expect("cold coordinator");
    let mut references: Vec<(ServerResponse, Vec<Vec<seabed_core::ResultValue>>)> = Vec::new();
    {
        let session = SeabedSession::single(table_name, client.clone(), &cold);
        for c in cases {
            let prepared = session
                .prepare(c.sql)
                .unwrap_or_else(|e| panic!("cold prepare {}: {e}", c.sql));
            let (bound, response) = session
                .execute_encrypted(&prepared, &c.params)
                .unwrap_or_else(|e| panic!("cold execute {}: {e}", c.sql));
            let report = cold.last_report();
            assert_eq!(report.cache_hits, 0, "capacity 0 must never hit: {}", c.sql);
            let rows = client
                .decrypt_response(prepared.query(), &bound, response.clone())
                .unwrap_or_else(|e| panic!("cold decrypt {}: {e}", c.sql))
                .rows;
            references.push((response, rows));
        }
    }
    assert_eq!(cold.cache_len(), 0, "capacity 0 must not retain partials");
    drop(cold);
    for w in workers {
        w.shutdown();
    }

    // Warm side: default config, cache enabled.
    let (workers, addrs) = spawn_pair();
    let coordinator = DistCoordinator::connect(&addrs, table.clone(), DistConfig::default()).expect("warm coordinator");
    let session = SeabedSession::single(table_name, client.clone(), &coordinator);
    for (c, (cold_response, cold_rows)) in cases.iter().zip(&references) {
        let prepared = session
            .prepare(c.sql)
            .unwrap_or_else(|e| panic!("prepare {}: {e}", c.sql));

        // First execute: a cold miss on every shard, populating the cache.
        let (_, first) = session
            .execute_encrypted(&prepared, &c.params)
            .unwrap_or_else(|e| panic!("populate execute {}: {e}", c.sql));
        let report = coordinator.last_report();
        assert_eq!(report.cache_hits, 0, "first execute must be cold: {}", c.sql);
        assert!(report.cache_misses > 0, "first execute must record misses: {}", c.sql);
        assert_eq!(first.groups, cold_response.groups, "cold populate diverged: {}", c.sql);
        assert_eq!(first.result_bytes, cold_response.result_bytes, "{}", c.sql);

        // Warm executes: answered from cached partials, byte-identical.
        for round in 0..3 {
            let (bound, warm) = session
                .execute_encrypted(&prepared, &c.params)
                .unwrap_or_else(|e| panic!("warm execute {}: {e}", c.sql));
            let report = coordinator.last_report();
            assert!(
                report.cache_hits > 0,
                "warm round {round} must hit the cache: {} ({report:?})",
                c.sql
            );
            assert_eq!(
                report.cache_misses, 0,
                "warm round {round} must not miss: {} ({report:?})",
                c.sql
            );
            assert_eq!(
                warm.groups, cold_response.groups,
                "warm round {round} groups diverged from cold scatter/gather: {}",
                c.sql
            );
            assert_eq!(
                warm.result_bytes, cold_response.result_bytes,
                "warm round {round} result bytes diverged: {}",
                c.sql
            );
            let rows = client
                .decrypt_response(prepared.query(), &bound, warm)
                .unwrap_or_else(|e| panic!("warm decrypt {}: {e}", c.sql))
                .rows;
            assert_eq!(
                &rows, cold_rows,
                "warm round {round} decrypted rows diverged: {}",
                c.sql
            );
        }
    }
    let stats = coordinator.cache_stats();
    assert!(
        stats.hits > 0 && stats.insertions > 0,
        "cache must have been used: {stats:?}"
    );
    drop(coordinator);
    for w in workers {
        w.shutdown();
    }
}

fn sales_fixture() -> (SeabedClient, Table) {
    use seabed_core::PlainDataset;
    let n = 2_400usize;
    let dataset = PlainDataset::new("sales")
        .with_text_column("dept", (0..n).map(|i| format!("d{}", i % 5)).collect())
        .with_uint_column("revenue", (0..n as u64).map(|i| (i * 13) % 500).collect())
        .with_uint_column("ts", (0..n as u64).map(|i| (i * 7919) % 10_000).collect());
    let columns = vec![
        ColumnSpec::sensitive("dept"),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("ts"),
    ];
    let samples: Vec<Query> = [
        "SELECT SUM(revenue) FROM sales WHERE dept = 'd1'",
        "SELECT SUM(revenue) FROM sales WHERE ts >= 3",
        "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
        "SELECT AVG(revenue) FROM sales",
    ]
    .iter()
    .map(|sql| parse(sql).expect("sample"))
    .collect();
    let mut client = SeabedClient::create_plan(b"cache-eq", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 8, &mut rand::rng());
    (client, encrypted.table)
}

#[test]
fn sales_warm_cache_equals_cold_scatter() {
    let (client, table) = sales_fixture();
    let cases = vec![
        case(
            "SELECT SUM(revenue) FROM sales WHERE dept = ? AND ts >= ?",
            vec![Literal::Text("d2".to_string()), Literal::Integer(4_000)],
        ),
        case("SELECT COUNT(*) FROM sales WHERE ts < ?", vec![Literal::Integer(2_500)]),
        case("SELECT dept, SUM(revenue) FROM sales GROUP BY dept", vec![]),
        case(
            "SELECT AVG(revenue) FROM sales WHERE ts >= ?",
            vec![Literal::Integer(1_000)],
        ),
    ];
    assert_warm_equals_cold("sales", &client, &table, &cases);
}

/// Different bound literals are a different filter hash: the cache must not
/// answer a new binding from another binding's partials, and each binding's
/// entries stay independently warm.
#[test]
fn distinct_bindings_key_the_cache_independently() {
    let (client, table) = sales_fixture();
    let (workers, addrs) = spawn_pair();
    let coordinator = DistCoordinator::connect(&addrs, table.clone(), DistConfig::default()).expect("coordinator");
    let session = SeabedSession::single("sales", client.clone(), &coordinator);
    let prepared = session
        .prepare("SELECT SUM(revenue) FROM sales WHERE dept = ?")
        .expect("prepare");

    let mut answers = Vec::new();
    for dept in ["d0", "d1", "d2"] {
        let (_, response) = session
            .execute_encrypted(&prepared, &[Literal::Text(dept.to_string())])
            .expect("cold execute");
        assert_eq!(
            coordinator.last_report().cache_hits,
            0,
            "first sight of binding {dept} must miss"
        );
        answers.push(response);
    }
    // Re-binding in a different order: every execute is warm now, and each
    // binding still gets its own answer.
    for (original, dept) in [(2usize, "d2"), (0, "d0"), (1, "d1")] {
        let (_, response) = session
            .execute_encrypted(&prepared, &[Literal::Text(dept.to_string())])
            .expect("warm execute");
        let report = coordinator.last_report();
        assert!(report.cache_hits > 0 && report.cache_misses == 0, "{report:?}");
        assert_eq!(
            response.groups, answers[original].groups,
            "binding {dept} crossed cache keys"
        );
    }
    drop(coordinator);
    for w in workers {
        w.shutdown();
    }
}

#[test]
fn ad_analytics_warm_cache_equals_cold_scatter() {
    let mut rng = rand::rng();
    let dataset = ad_analytics::generate(&mut rng, 2_500);
    let queries = ad_analytics::performance_query_set(&mut rng);
    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if n == "measure00" || n == "measure01" {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let samples: Vec<Query> = queries.iter().map(|q| parse(&q.sql).expect("sample")).collect();
    let mut client = SeabedClient::create_plan(b"cache-ada", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 6, &mut rng);
    let cases = vec![
        case(
            "SELECT hour, SUM(measure00) FROM ad_analytics WHERE hour >= ? AND hour < ? GROUP BY hour",
            vec![Literal::Integer(6), Literal::Integer(14)],
        ),
        case(
            "SELECT SUM(measure01) FROM ad_analytics WHERE hour = ?",
            vec![Literal::Integer(3)],
        ),
    ];
    assert_warm_equals_cold("ad_analytics", &client, &encrypted.table, &cases);
}

#[test]
fn bdb_warm_cache_equals_cold_scatter() {
    let mut rng = rand::rng();
    let tables = bdb::generate(&mut rng, 1_200, 2_000);
    let dataset = &tables.rankings;
    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if ["pageRank", "avgDuration"].contains(&n.as_str()) {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let samples: Vec<Query> = bdb::queries()
        .iter()
        .filter(|q| q.table == "rankings")
        .map(|q| parse(&q.sql).expect("sample"))
        .collect();
    let mut client = SeabedClient::create_plan(b"cache-bdb", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(dataset, 6, &mut rng);
    let cases = vec![
        case(
            "SELECT SUM(avgDuration) FROM rankings WHERE pageRank > ?",
            vec![Literal::Integer(100)],
        ),
        case(
            "SELECT COUNT(*) FROM rankings WHERE pageRank > ?",
            vec![Literal::Integer(500)],
        ),
    ];
    assert_warm_equals_cold("rankings", &client, &encrypted.table, &cases);
}
