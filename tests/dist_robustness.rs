//! Failure-mode tests for the `seabed-dist` coordinator: worker death and
//! stalls mid-query (hedged re-dispatch), garbage and truncated
//! partial-response frames (typed errors, coordinator survives), and
//! duplicate / late partial responses (discarded, never merged twice).

use seabed_core::{SeabedServer, ServerResponse};
use seabed_dist::{spawn_worker, DistConfig, DistCoordinator};
use seabed_engine::{Cluster, ClusterConfig, ColumnData, ColumnType, Schema, Table};
use seabed_error::SeabedError;
use seabed_net::wire::{self, Frame, HEADER_LEN};
use seabed_net::ServiceConfig;
use seabed_query::{ServerAggregate, SupportCategory, TranslatedQuery};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

fn test_table(rows: u64, partitions: usize) -> Table {
    Table::from_columns(
        Schema::new([
            ("m__ashe".to_string(), ColumnType::UInt64),
            ("g".to_string(), ColumnType::UInt64),
        ]),
        vec![
            ColumnData::UInt64((0..rows).map(|i| i * 3 + 1).collect()),
            ColumnData::UInt64((0..rows).map(|i| i % 7).collect()),
        ],
        partitions,
    )
}

fn sum_query(group_by: bool) -> TranslatedQuery {
    TranslatedQuery {
        base_table: "t".to_string(),
        filters: vec![],
        aggregates: vec![
            ServerAggregate::AsheSum {
                column: "m__ashe".to_string(),
            },
            ServerAggregate::CountRows,
        ],
        group_by: if group_by {
            vec![seabed_query::GroupByColumn {
                column: "g".to_string(),
                physical_column: "g".to_string(),
                encrypted: false,
            }]
        } else {
            vec![]
        },
        group_inflation: 1,
        client_post: vec![],
        preserve_row_ids: true,
        category: SupportCategory::ServerOnly,
        params: vec![],
    }
}

fn local_answer(table: &Table, query: &TranslatedQuery) -> ServerResponse {
    SeabedServer::new(table.clone(), Cluster::new(ClusterConfig::with_workers(4)))
        .execute(query, &[])
        .expect("local execution")
}

// ---------------------------------------------------------------------------
// A scriptable fake worker: speaks the genuine protocol (handshake, shard
// load, shard execution via the real engine) except where its misbehavior
// says otherwise.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Misbehavior {
    /// Close the connection the moment a shard query arrives (worker death).
    DieOnQuery,
    /// Go silent on a shard query (stall past the coordinator's timeout).
    StallOnQuery,
    /// Answer a shard query with raw garbage bytes (stream desync).
    GarbageOnQuery,
    /// Answer with a frame header whose payload never fully arrives.
    TruncateOnQuery,
    /// Answer correctly, but first ship a duplicate partial under a stale
    /// sequence number.
    DuplicateStaleThenCorrect,
    /// Answer with a well-framed partial whose groups carry fewer aggregates
    /// than the query requested (a forged/buggy shape).
    ForgedShortPartial,
    /// Answer correctly but trickle the frame one byte at a time, each byte
    /// well inside a per-chunk timeout — only a *total* round-trip budget
    /// catches this.
    TrickleOnQuery,
    /// Answer the first shard query correctly but far too late (slower than
    /// the hedge trigger, faster than the stall timeout), then answer every
    /// later query promptly. The late reply is a hedge *loser*: a
    /// valid-looking partial under a stale sequence number.
    SlowPartialOnce,
}

fn read_frame(stream: &mut TcpStream) -> Option<Frame> {
    let mut header_bytes = [0u8; HEADER_LEN];
    stream.read_exact(&mut header_bytes).ok()?;
    let header = wire::decode_header(&header_bytes, wire::DEFAULT_MAX_FRAME_LEN).ok()?;
    let mut payload = vec![0u8; header.payload_len as usize];
    stream.read_exact(&mut payload).ok()?;
    wire::decode_payload(header.kind, &payload).ok()
}

fn send_frame(stream: &mut TcpStream, frame: &Frame) {
    let bytes = wire::encode_frame(frame, wire::DEFAULT_MAX_FRAME_LEN).expect("encode");
    let _ = stream.write_all(&bytes);
}

/// Spawns the fake worker; it serves exactly one coordinator connection.
fn fake_worker(behavior: Misbehavior) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        let mut shards: HashMap<u32, SeabedServer> = HashMap::new();
        let mut first_query = true;
        while let Some(frame) = read_frame(&mut stream) {
            match frame {
                Frame::WorkerHandshake { epoch } => send_frame(&mut stream, &Frame::WorkerReady { epoch, shards: 0 }),
                Frame::LoadShard {
                    epoch,
                    table_id,
                    shard,
                    table,
                    ..
                } => {
                    let rows = table.num_rows() as u64;
                    shards.insert(
                        shard,
                        SeabedServer::new(table, Cluster::new(ClusterConfig::with_workers(1).local_threads(1))),
                    );
                    send_frame(
                        &mut stream,
                        &Frame::ShardLoaded {
                            epoch,
                            table_id,
                            shard,
                            rows,
                        },
                    );
                }
                Frame::ShardQuery {
                    epoch,
                    table_id,
                    shard,
                    seq,
                    query,
                    filters,
                    ..
                } => match behavior {
                    Misbehavior::DieOnQuery => return,
                    Misbehavior::StallOnQuery => {
                        std::thread::sleep(Duration::from_secs(3));
                        return;
                    }
                    Misbehavior::GarbageOnQuery => {
                        let _ = stream.write_all(b"NOT A SEABED FRAME AT ALL \xff\xff\xff\xff");
                        return;
                    }
                    Misbehavior::TruncateOnQuery => {
                        // A plausible header promising 64 payload bytes,
                        // followed by silence and a close.
                        let mut bytes = Vec::new();
                        bytes.extend_from_slice(&wire::MAGIC);
                        bytes.extend_from_slice(&wire::PROTOCOL_VERSION.to_le_bytes());
                        bytes.push(11); // ShardPartial kind
                        bytes.extend_from_slice(&64u32.to_le_bytes());
                        bytes.extend_from_slice(&[0u8; 10]);
                        let _ = stream.write_all(&bytes);
                        return;
                    }
                    Misbehavior::ForgedShortPartial => {
                        let mut partial = shards
                            .get(&shard)
                            .expect("shard resident")
                            .execute_partial(&query, &filters)
                            .expect("shard execution");
                        for states in partial.groups.values_mut() {
                            states.truncate(1);
                        }
                        send_frame(
                            &mut stream,
                            &Frame::ShardPartial {
                                epoch,
                                table_id,
                                shard,
                                seq,
                                partial,
                            },
                        );
                    }
                    Misbehavior::TrickleOnQuery => {
                        let partial = shards
                            .get(&shard)
                            .expect("shard resident")
                            .execute_partial(&query, &filters)
                            .expect("shard execution");
                        let bytes = wire::encode_frame(
                            &Frame::ShardPartial {
                                epoch,
                                table_id,
                                shard,
                                seq,
                                partial,
                            },
                            wire::DEFAULT_MAX_FRAME_LEN,
                        )
                        .expect("encode");
                        // One byte per 60 ms: each chunk is comfortably
                        // inside a 400 ms per-chunk timeout, but the whole
                        // frame takes many seconds. A deadline-based budget
                        // must cut this off; the coordinator closing the
                        // connection errors the write and ends the trickle.
                        for byte in &bytes {
                            if stream.write_all(std::slice::from_ref(byte)).is_err() {
                                return;
                            }
                            let _ = stream.flush();
                            std::thread::sleep(Duration::from_millis(60));
                        }
                        return;
                    }
                    Misbehavior::SlowPartialOnce => {
                        if first_query {
                            first_query = false;
                            std::thread::sleep(Duration::from_millis(700));
                        }
                        let partial = shards
                            .get(&shard)
                            .expect("shard resident")
                            .execute_partial(&query, &filters)
                            .expect("shard execution");
                        send_frame(
                            &mut stream,
                            &Frame::ShardPartial {
                                epoch,
                                table_id,
                                shard,
                                seq,
                                partial,
                            },
                        );
                    }
                    Misbehavior::DuplicateStaleThenCorrect => {
                        let partial = shards
                            .get(&shard)
                            .expect("shard resident")
                            .execute_partial(&query, &filters)
                            .expect("shard execution");
                        // A duplicate under an older sequence number first —
                        // the coordinator must discard it, not merge twice.
                        send_frame(
                            &mut stream,
                            &Frame::ShardPartial {
                                epoch,
                                table_id,
                                shard,
                                seq: seq.saturating_sub(1),
                                partial: partial.clone(),
                            },
                        );
                        send_frame(
                            &mut stream,
                            &Frame::ShardPartial {
                                epoch,
                                table_id,
                                shard,
                                seq,
                                partial,
                            },
                        );
                    }
                },
                _ => return,
            }
        }
    });
    (addr, handle)
}

/// Connects a coordinator over a mix of real and fake workers.
fn mixed_cluster(
    real: usize,
    behavior: Misbehavior,
    table: Table,
    config: DistConfig,
) -> (Vec<seabed_net::NetServer>, std::thread::JoinHandle<()>, DistCoordinator) {
    let workers: Vec<_> = (0..real)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker"))
        .collect();
    let (fake_addr, fake_handle) = fake_worker(behavior);
    let mut addrs: Vec<SocketAddr> = workers.iter().map(|w| w.local_addr()).collect();
    // The fake sits in the middle so it owns a real shard.
    addrs.insert(real / 2, fake_addr);
    let coordinator = DistCoordinator::connect(&addrs, table, config).expect("connect");
    (workers, fake_handle, coordinator)
}

// ---------------------------------------------------------------------------
// Worker death and stalls
// ---------------------------------------------------------------------------

/// A worker that dies mid-query: its shard is re-dispatched to a survivor,
/// the query completes with the exact single-server answer, and the
/// coordinator stays alive for further queries.
#[test]
fn worker_death_mid_query_redispatches_and_completes() {
    let table = test_table(2_000, 8);
    let query = sum_query(false);
    let expected = local_answer(&table, &query);
    let (workers, fake, coordinator) = mixed_cluster(2, Misbehavior::DieOnQuery, table, DistConfig::default());

    let response = coordinator.execute(&query, &[]).expect("query must survive the death");
    assert_eq!(expected.groups, response.groups);
    assert_eq!(expected.result_bytes, response.result_bytes);
    let report = coordinator.last_report();
    assert!(
        report.runs.iter().any(|r| r.redispatched),
        "a shard must have been re-dispatched: {report:?}"
    );
    assert!(
        coordinator.worker_summaries().iter().any(|w| !w.alive),
        "the dead worker must be marked"
    );

    // The coordinator survives and keeps answering (now without the corpse).
    let again = coordinator.execute(&query, &[]).expect("follow-up query");
    assert_eq!(expected.groups, again.groups);
    assert!(coordinator.last_report().runs.iter().all(|r| !r.redispatched));

    fake.join().expect("fake worker");
    for w in workers {
        w.shutdown();
    }
}

/// A real `NetServer` worker shut down between queries: the coordinator sees
/// the closed connections and re-dispatches its shards.
#[test]
fn real_worker_shutdown_between_queries_is_survived() {
    let table = test_table(1_000, 6);
    let query = sum_query(true);
    let expected = local_answer(&table, &query);

    let mut workers: Vec<_> = (0..3)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker"))
        .collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.local_addr()).collect();
    let coordinator = DistCoordinator::connect(&addrs, table, DistConfig::default()).expect("connect");
    let first = coordinator.execute(&query, &[]).expect("healthy query");
    assert_eq!(expected.groups, first.groups);

    // Kill worker 1 for real.
    workers.remove(1).shutdown();
    let response = coordinator.execute(&query, &[]).expect("query after the kill");
    assert_eq!(expected.groups, response.groups);
    assert!(coordinator.last_report().runs.iter().any(|r| r.redispatched));
    for w in workers {
        w.shutdown();
    }
}

/// A worker that stalls mid-query past the coordinator's read timeout is
/// treated as dead: hedged re-dispatch completes the query correctly.
#[test]
fn stalled_worker_triggers_hedged_redispatch() {
    let table = test_table(1_200, 6);
    let query = sum_query(false);
    let expected = local_answer(&table, &query);
    let config = DistConfig::default().read_timeout(Duration::from_millis(300));
    let (workers, fake, coordinator) = mixed_cluster(2, Misbehavior::StallOnQuery, table, config);

    let response = coordinator.execute(&query, &[]).expect("query must survive the stall");
    assert_eq!(expected.groups, response.groups);
    assert!(coordinator.last_report().runs.iter().any(|r| r.redispatched));

    fake.join().expect("fake worker");
    for w in workers {
        w.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Malformed partial-response frames
// ---------------------------------------------------------------------------

/// Garbage instead of a partial: a typed error internally, re-dispatch
/// externally — and with no survivors, a typed error to the caller while the
/// coordinator process stays up.
#[test]
fn garbage_partial_frames_are_survived_or_typed() {
    let table = test_table(900, 4);
    let query = sum_query(false);
    let expected = local_answer(&table, &query);

    // With a survivor: correct result.
    let (workers, fake, coordinator) =
        mixed_cluster(1, Misbehavior::GarbageOnQuery, table.clone(), DistConfig::default());
    let response = coordinator.execute(&query, &[]).expect("survivor must carry the query");
    assert_eq!(expected.groups, response.groups);
    fake.join().expect("fake worker");
    for w in workers {
        w.shutdown();
    }

    // Without survivors: a typed Dist error, not a panic — and the
    // coordinator remains usable as an object (every call answers).
    let (fake_addr, fake_handle) = fake_worker(Misbehavior::GarbageOnQuery);
    let coordinator = DistCoordinator::connect(&[fake_addr], table, DistConfig::default()).expect("connect");
    let outcome = coordinator.execute(&query, &[]);
    assert!(matches!(outcome, Err(SeabedError::Dist { .. })), "{outcome:?}");
    let again = coordinator.execute(&query, &[]);
    assert!(matches!(again, Err(SeabedError::Dist { .. })), "{again:?}");
    fake_handle.join().expect("fake worker");
}

/// A truncated partial frame (valid header, missing payload bytes) is a
/// typed error and a re-dispatch, never a hang or a panic.
#[test]
fn truncated_partial_frames_are_survived() {
    let table = test_table(900, 4);
    let query = sum_query(true);
    let expected = local_answer(&table, &query);
    let config = DistConfig::default().read_timeout(Duration::from_millis(500));
    let (workers, fake, coordinator) = mixed_cluster(1, Misbehavior::TruncateOnQuery, table, config);
    let response = coordinator.execute(&query, &[]).expect("survivor must carry the query");
    assert_eq!(expected.groups, response.groups);
    assert!(coordinator.last_report().runs.iter().any(|r| r.redispatched));
    fake.join().expect("fake worker");
    for w in workers {
        w.shutdown();
    }
}

/// A well-framed partial whose groups carry the wrong number of aggregates
/// is rejected by the coordinator's shape check (never zip-truncated into
/// the merge) and the shard is re-dispatched to a survivor.
#[test]
fn forged_short_partials_are_rejected_and_redispatched() {
    let table = test_table(1_000, 4);
    let query = sum_query(false); // two aggregates; the forger ships one
    let expected = local_answer(&table, &query);
    let (workers, fake, coordinator) = mixed_cluster(1, Misbehavior::ForgedShortPartial, table, DistConfig::default());
    let response = coordinator.execute(&query, &[]).expect("survivor must carry the query");
    assert_eq!(expected.groups, response.groups, "forged shape must never merge");
    assert!(coordinator.last_report().runs.iter().any(|r| r.redispatched));
    drop(coordinator);
    fake.join().expect("fake worker");
    for w in workers {
        w.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Partial-cache invalidation under worker death
// ---------------------------------------------------------------------------

/// Worker death discovered mid-sweep bumps the cache epoch and fences every
/// pre-death cached partial: the next execute of a previously-warm statement
/// is fully cold (a stale partial can never merge into a post-recovery
/// response), re-merges only fresh partials, and matches the single-server
/// reference byte for byte — then re-warms under the new epoch.
#[test]
fn worker_death_mid_sweep_fences_cached_partials() {
    use seabed_core::QueryTarget;
    let table = test_table(2_000, 8);
    let stmt_a = sum_query(false);
    let stmt_b = sum_query(true);
    let expected_a = local_answer(&table, &stmt_a);
    let expected_b = local_answer(&table, &stmt_b);

    let mut workers: Vec<_> = (0..3)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker"))
        .collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.local_addr()).collect();
    let coordinator = DistCoordinator::connect(&addrs, table, DistConfig::default()).expect("connect");

    // Populate statement A (cold), then confirm it answers warm.
    let first = coordinator.execute_prepared(&stmt_a, 1, &[]).expect("populate");
    assert_eq!(expected_a.groups, first.groups);
    let report = coordinator.last_report();
    assert!(report.cache_misses > 0 && report.cache_hits == 0, "{report:?}");
    let warm = coordinator.execute_prepared(&stmt_a, 1, &[]).expect("warm");
    assert_eq!(expected_a.groups, warm.groups);
    assert_eq!(expected_a.result_bytes, warm.result_bytes);
    assert!(coordinator.last_report().cache_hits > 0);

    let epoch_before = coordinator.cache_epoch();
    assert!(coordinator.cache_len() > 0, "partials must be resident before the kill");

    // Kill a worker for real. The next sweep (statement B, nothing cached)
    // runs into the dead connections mid-scatter: re-dispatch completes the
    // query, and the discovery bumps the cache epoch and evicts stale
    // entries.
    workers.remove(1).shutdown();
    let b = coordinator
        .execute_prepared(&stmt_b, 2, &[])
        .expect("query after the kill");
    assert_eq!(expected_b.groups, b.groups);
    assert!(coordinator.last_report().runs.iter().any(|r| r.redispatched));
    assert!(
        coordinator.cache_epoch() > epoch_before,
        "worker death must bump the cache epoch"
    );
    assert!(
        coordinator.cache_stats().invalidated > 0,
        "the dead worker's cached partials must be evicted: {:?}",
        coordinator.cache_stats()
    );

    // Statement A again: every pre-death partial is fenced, so the execute
    // is fully cold and byte-identical to the reference.
    let recovered = coordinator.execute_prepared(&stmt_a, 1, &[]).expect("post-recovery");
    let report = coordinator.last_report();
    assert_eq!(
        report.cache_hits, 0,
        "a stale partial must never merge into a post-recovery response: {report:?}"
    );
    assert!(report.cache_misses > 0, "{report:?}");
    assert_eq!(expected_a.groups, recovered.groups);
    assert_eq!(expected_a.result_bytes, recovered.result_bytes);

    // And the cache re-warms under the new epoch.
    let rewarmed = coordinator.execute_prepared(&stmt_a, 1, &[]).expect("re-warm");
    assert!(coordinator.last_report().cache_hits > 0);
    assert_eq!(expected_a.groups, rewarmed.groups);
    for w in workers {
        w.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Duplicate / late partials
// ---------------------------------------------------------------------------

/// A duplicated partial under a stale sequence number is discarded — the
/// result matches single-server execution exactly (merging the duplicate
/// would double the sums and ID sets) and the discard is counted.
#[test]
fn duplicate_stale_partials_are_discarded_not_merged() {
    let table = test_table(1_500, 6);
    let query = sum_query(false);
    let expected = local_answer(&table, &query);
    let (workers, fake, coordinator) =
        mixed_cluster(2, Misbehavior::DuplicateStaleThenCorrect, table, DistConfig::default());

    // Two queries: the fake duplicates on each, so by the second query the
    // stale seq of query 2 can also collide with in-flight expectations.
    for _ in 0..2 {
        let response = coordinator.execute(&query, &[]).expect("query");
        assert_eq!(expected.groups, response.groups, "duplicate partial must not be merged");
    }
    let report = coordinator.last_report();
    assert!(
        report.discarded_partials >= 1,
        "the stale duplicate must be counted as discarded: {report:?}"
    );
    // The fake worker keeps serving until its connection closes; dropping
    // the coordinator closes it, so the join below can complete.
    drop(coordinator);
    fake.join().expect("fake worker");
    for w in workers {
        w.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Deadline budgets, hedging, and dead-worker re-dispatch
// ---------------------------------------------------------------------------

/// Regression: the coordinator used to apply `read_timeout` per `read_exact`
/// chunk, so a worker trickling one byte per interval evaded the stall guard
/// indefinitely and one query could hang for `timeout × frame bytes`. With a
/// deadline-based total budget, the trickler is cut off within one round-trip
/// budget, its shard is re-dispatched, and the answer stays byte-identical.
#[test]
fn trickled_partials_exhaust_the_total_budget_not_per_chunk() {
    let table = test_table(600, 4);
    let query = sum_query(false);
    let expected = local_answer(&table, &query);
    let config = DistConfig::default().read_timeout(Duration::from_millis(400));
    let (workers, fake, coordinator) = mixed_cluster(2, Misbehavior::TrickleOnQuery, table, config);

    let started = std::time::Instant::now();
    let response = coordinator
        .execute(&query, &[])
        .expect("survivors must carry the query");
    let elapsed = started.elapsed();
    assert_eq!(expected.groups, response.groups);
    assert_eq!(expected.result_bytes, response.result_bytes);
    // Pre-fix this took ~60 ms × frame length (tens of seconds); post-fix the
    // trickler burns one 400 ms budget plus a fast re-dispatch.
    assert!(
        elapsed < Duration::from_secs(4),
        "trickler evaded the round-trip stall budget: {elapsed:?}"
    );
    assert!(coordinator.last_report().runs.iter().any(|r| r.redispatched));

    drop(coordinator);
    fake.join().expect("fake worker");
    for w in workers {
        w.shutdown();
    }
}

/// A slow (not dead) primary is hedged against a replica: the replica's
/// answer wins, the slow worker's connection stays healthy, and the hedge
/// loser's late partial — a valid-looking frame under a stale sequence
/// number — is discarded by seq on the next round trip, never merged twice.
#[test]
fn hedged_reads_race_replicas_and_discard_the_loser_by_seq() {
    let table = test_table(1_500, 6);
    let query = sum_query(false);
    let expected = local_answer(&table, &query);
    let config = DistConfig::default()
        .read_timeout(Duration::from_secs(5))
        .hedge_after(Duration::from_millis(150));
    let (workers, fake, coordinator) = mixed_cluster(2, Misbehavior::SlowPartialOnce, table, config);

    // First query: the fake sits on its shard for 700 ms, the coordinator
    // hedges at 150 ms, and a replica carries the shard.
    let response = coordinator.execute(&query, &[]).expect("hedged query");
    assert_eq!(expected.groups, response.groups);
    assert_eq!(expected.result_bytes, response.result_bytes);
    let report = coordinator.last_report();
    assert!(
        report.hedged_reads >= 1,
        "the slow shard must have been hedged: {report:?}"
    );
    assert!(report.runs.iter().any(|r| r.hedged), "{report:?}");
    assert!(
        coordinator.worker_summaries().iter().all(|w| w.alive),
        "a merely-slow worker must not be poisoned: {:?}",
        coordinator.worker_summaries()
    );

    // Let the hedge loser's late partial land on the (healthy) connection.
    std::thread::sleep(Duration::from_millis(1_000));

    // Second query: the stale partial is drained and counted as discarded,
    // then the now-prompt worker answers — byte-identical again.
    let again = coordinator.execute(&query, &[]).expect("follow-up query");
    assert_eq!(expected.groups, again.groups);
    assert_eq!(expected.result_bytes, again.result_bytes);
    let report = coordinator.last_report();
    assert!(
        report.discarded_partials >= 1,
        "the hedge loser must be discarded by seq, not merged: {report:?}"
    );
    assert!(coordinator.worker_summaries().iter().all(|w| w.alive));

    drop(coordinator);
    fake.join().expect("fake worker");
    for w in workers {
        w.shutdown();
    }
}

/// Regression: re-dispatch must never select a worker already marked dead,
/// and when no live replica or worker remains it must surface a typed
/// `SeabedError::Dist` promptly — not hang re-probing corpses.
#[test]
fn redispatch_with_no_live_worker_is_a_typed_error_not_a_hang() {
    let table = test_table(600, 4);
    let query = sum_query(false);
    let (f1, h1) = fake_worker(Misbehavior::DieOnQuery);
    let (f2, h2) = fake_worker(Misbehavior::DieOnQuery);
    let config = DistConfig::default().read_timeout(Duration::from_millis(500));
    let coordinator = DistCoordinator::connect(&[f1, f2], table, config).expect("connect");

    let started = std::time::Instant::now();
    let outcome = coordinator.execute(&query, &[]);
    assert!(matches!(outcome, Err(SeabedError::Dist { .. })), "{outcome:?}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "exhausted re-dispatch must fail fast: {:?}",
        started.elapsed()
    );
    assert!(coordinator.worker_summaries().iter().all(|w| !w.alive));

    // Every worker is known dead now: a further execute fails typed and
    // near-instantly, without a single new round trip to a corpse.
    let started = std::time::Instant::now();
    let again = coordinator.execute(&query, &[]);
    assert!(matches!(again, Err(SeabedError::Dist { .. })), "{again:?}");
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "dead workers must never be re-selected: {:?}",
        started.elapsed()
    );

    h1.join().expect("fake worker");
    h2.join().expect("fake worker");
}

/// Regression for the clock-derived epoch: two coordinators racing one
/// worker pool must claim it under *distinct* epochs, so the loser's shards
/// are evicted and its queries fail typed instead of silently reading the
/// winner's data (pre-fix, coordinators starting on the same clock reading
/// collided and shared an epoch).
#[test]
fn racing_coordinators_get_distinct_epochs_and_the_loser_fails_typed() {
    let table_a = test_table(800, 4);
    // Different data for B: a silent epoch collision would let A's queries
    // answer from B's shards with a plausible—but wrong—result.
    let table_b = Table::from_columns(
        Schema::new([
            ("m__ashe".to_string(), ColumnType::UInt64),
            ("g".to_string(), ColumnType::UInt64),
        ]),
        vec![
            ColumnData::UInt64((0..800u64).map(|i| i * 11 + 5).collect()),
            ColumnData::UInt64((0..800u64).map(|i| i % 3).collect()),
        ],
        4,
    );
    let query = sum_query(false);
    let expected_b = local_answer(&table_b, &query);

    let workers: Vec<_> = (0..2)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker"))
        .collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.local_addr()).collect();
    let a = DistCoordinator::connect(&addrs, table_a, DistConfig::default()).expect("coordinator A");
    let b = DistCoordinator::connect(&addrs, table_b, DistConfig::default()).expect("coordinator B");
    assert_ne!(a.epoch(), b.epoch(), "racing coordinators must never share an epoch");

    // B claimed the pool last: it answers correctly.
    let rb = b.execute(&query, &[]).expect("the winning coordinator");
    assert_eq!(expected_b.groups, rb.groups);
    assert_eq!(expected_b.result_bytes, rb.result_bytes);

    // A's epoch is fenced on every worker: a typed Dist error, never B's
    // data and never a hang.
    let ra = a.execute(&query, &[]);
    assert!(matches!(ra, Err(SeabedError::Dist { .. })), "{ra:?}");

    // And B keeps working afterwards.
    let rb = b.execute(&query, &[]).expect("the winner is unaffected");
    assert_eq!(expected_b.groups, rb.groups);
    for w in workers {
        w.shutdown();
    }
}
