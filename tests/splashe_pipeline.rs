//! Integration tests for the SPLASHE pipeline: planner decisions, the
//! flattened histogram the server sees, and attack resistance.

use seabed_core::{PlainDataset, SeabedClient, SeabedServer};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_query::{parse, ColumnSpec, PlannerConfig};
use seabed_splashe::{frequency_attack, AuxiliaryDistribution};
use std::collections::HashMap;

fn skewed_dataset(rows: usize) -> PlainDataset {
    let countries: Vec<String> = (0..rows)
        .map(|i| match i % 100 {
            0..=59 => "USA".to_string(),
            60..=89 => "Canada".to_string(),
            90..=95 => "India".to_string(),
            96..=98 => "Chile".to_string(),
            _ => "Iraq".to_string(),
        })
        .collect();
    PlainDataset::new("t")
        .with_text_column("country", countries)
        .with_uint_column("salary", (0..rows as u64).map(|i| i % 900 + 100).collect())
}

fn build(rows: usize) -> (SeabedClient, SeabedServer, PlainDataset) {
    let ds = skewed_dataset(rows);
    let columns = vec![
        ColumnSpec::sensitive_with_distribution("country", ds.distribution("country").unwrap()),
        ColumnSpec::sensitive("salary"),
    ];
    let samples = vec![parse("SELECT SUM(salary) FROM t WHERE country = 'USA'").unwrap()];
    let mut client = SeabedClient::create_plan(b"splashe-it", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&ds, 4, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
    (client, server, ds)
}

#[test]
fn sums_are_correct_for_every_country() {
    let (client, server, ds) = build(3000);
    let country = ds.column("country").unwrap();
    let salary = ds.column("salary").unwrap();
    for value in ["USA", "Canada", "India", "Chile", "Iraq"] {
        let expected: u64 = (0..ds.num_rows())
            .filter(|&i| country.text_at(i) == value)
            .map(|i| salary.u64_at(i).unwrap())
            .sum();
        let result = client
            .query(&server, &format!("SELECT SUM(salary) FROM t WHERE country = '{value}'"))
            .unwrap();
        assert_eq!(result.rows[0][0].as_u64(), Some(expected), "country {value}");
    }
}

#[test]
fn stored_det_column_has_flat_histogram() {
    let (_, server, _) = build(2500);
    let tags = server
        .table()
        .gather_u64("country__det")
        .expect("balanced DET column present");
    let mut hist: HashMap<u64, u64> = HashMap::new();
    for t in tags {
        *hist.entry(t).or_insert(0) += 1;
    }
    let max = hist.values().max().unwrap();
    let min = hist.values().min().unwrap();
    assert!(max - min <= 1, "the server-visible histogram must be flat: {hist:?}");
}

#[test]
fn frequency_attack_fails_against_stored_column() {
    let (_, server, ds) = build(2500);
    let tags = server.table().gather_u64("country__det").unwrap();
    let truth: Vec<String> = (0..ds.num_rows())
        .map(|i| ds.column("country").unwrap().text_at(i))
        .collect();
    let aux = AuxiliaryDistribution::from_counts(
        ds.distribution("country")
            .unwrap()
            .iter()
            .map(|(v, c)| (v.as_str(), *c)),
    );
    let result = frequency_attack(&tags, &aux, &truth);
    // USA/Canada never appear in the DET column at all (they are splayed), and
    // the infrequent values are balanced. The attacker's rank matching can
    // still coincide with the truth on some dummy cells by chance, but the
    // recovery rate must stay below the trivial prior (guessing "USA" for
    // every row already scores 60%) and far below the 100% recovery the
    // plain-DET control achieves.
    assert!(
        result.row_recovery_rate() < 0.45,
        "attack should fail against SPLASHE, got {}",
        result.row_recovery_rate()
    );
}

#[test]
fn plain_det_column_would_be_recovered() {
    // Control experiment: the same data under plain DET is fully recovered.
    let ds = skewed_dataset(2500);
    let det = seabed_crypto::DetScheme::new(&[3u8; 32]);
    let truth: Vec<String> = (0..ds.num_rows())
        .map(|i| ds.column("country").unwrap().text_at(i))
        .collect();
    let tags: Vec<u64> = truth.iter().map(|c| det.tag64_of(c.as_bytes())).collect();
    let aux = AuxiliaryDistribution::from_counts(
        ds.distribution("country")
            .unwrap()
            .iter()
            .map(|(v, c)| (v.as_str(), *c)),
    );
    let result = frequency_attack(&tags, &aux, &truth);
    assert!(result.row_recovery_rate() > 0.99);
}
