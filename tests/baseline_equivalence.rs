//! Cross-system equivalence: NoEnc, Seabed (ASHE) and Paillier must produce
//! identical answers for the same selections, and their relative costs must
//! have the shape the paper reports.

use seabed_ashe::{AsheScheme, IdSet};
use seabed_core::{row_selected, NoEncSystem, PaillierSystem};
use seabed_engine::{Cluster, ClusterConfig};

fn values(n: u64) -> Vec<u64> {
    (0..n).map(|i| (i * 31 + 7) % 10_000).collect()
}

#[test]
fn all_three_systems_agree_on_sums() {
    let vals = values(4_000);
    let cluster = Cluster::new(ClusterConfig::with_workers(16));
    let noenc = NoEncSystem::new(&vals, None, 8, cluster.clone());
    let mut rng = rand::rng();
    let paillier = PaillierSystem::new(&vals[..1_000], None, 4, cluster.clone(), 128, &mut rng);
    let ashe = AsheScheme::new(&[1u8; 16]);
    let encrypted = seabed_ashe::encrypt_column(&ashe, &vals, 0);

    for selectivity in [0.0, 0.25, 0.5, 1.0] {
        let expected: u64 = vals
            .iter()
            .enumerate()
            .filter(|(i, _)| row_selected(*i as u64, selectivity))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(noenc.sum(selectivity).sum, expected, "NoEnc at {selectivity}");

        let agg = seabed_ashe::aggregate_where(&ashe, &encrypted, |i| row_selected(i as u64, selectivity));
        assert_eq!(ashe.decrypt(&agg), expected, "ASHE at {selectivity}");
    }
    // Paillier checked on its (smaller) prefix.
    let expected_prefix: u64 = vals[..1_000]
        .iter()
        .enumerate()
        .filter(|(i, _)| row_selected(*i as u64, 0.5))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(paillier.sum(0.5).sum, expected_prefix);
}

#[test]
fn ashe_result_size_is_constant_for_full_scans() {
    // The headline property: a full-table ASHE aggregate ships a constant-size
    // ID list, regardless of row count.
    let small = IdSet::range(0, 9_999);
    let large = IdSet::range(0, 9_999_999);
    let enc = seabed_encoding::IdListEncoding::seabed_default();
    assert!(large.encoded_size(enc) <= small.encoded_size(enc) + 4);
}

#[test]
fn paillier_is_much_slower_per_row_than_ashe() {
    let vals = values(2_000);
    let cluster = Cluster::new(ClusterConfig::with_workers(4));
    let mut rng = rand::rng();
    let paillier = PaillierSystem::new(&vals, None, 4, cluster.clone(), 128, &mut rng);

    let ashe = AsheScheme::new(&[1u8; 16]);
    let encrypted = seabed_ashe::encrypt_column(&ashe, &vals, 0);
    let start = std::time::Instant::now();
    let agg = seabed_ashe::aggregate_where(&ashe, &encrypted, |_| true);
    let _ = ashe.decrypt(&agg);
    let ashe_time = start.elapsed();

    let result = paillier.sum(1.0);
    let paillier_time = result.stats.total_task_time + result.client_time;
    assert!(
        paillier_time > ashe_time * 10,
        "Paillier ({paillier_time:?}) should be far slower than ASHE ({ashe_time:?}) even at a 128-bit modulus"
    );
}

#[test]
fn group_by_results_agree() {
    let vals = values(3_000);
    let groups: Vec<u64> = (0..3_000u64).map(|i| i % 12).collect();
    let cluster = Cluster::new(ClusterConfig::with_workers(8));
    let noenc = NoEncSystem::new(&vals, Some(&groups), 6, cluster.clone());
    let (plain, _) = noenc.group_by_sum(1.0);
    let mut rng = rand::rng();
    let paillier = PaillierSystem::new(&vals, Some(&groups), 6, cluster, 128, &mut rng);
    let (enc, _, _) = paillier.group_by_sum(1.0);
    assert_eq!(plain.len(), enc.len());
    for (k, v) in &plain {
        assert_eq!(enc[k], *v, "group {k}");
    }
}
