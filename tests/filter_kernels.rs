//! Property tests for the vectorized filter kernels.
//!
//! For every [`PhysicalFilter`] variant, the kernel
//! ([`PhysicalFilter::refine`]) applied to a full selection must produce
//! exactly the set of rows where the scalar predicate
//! ([`PhysicalFilter::matches`]) returns true — over random columns, random
//! operators and literals, empty partitions, and the all-match / none-match
//! edges. Refining an already-narrowed selection must behave as set
//! intersection.

use proptest::prelude::*;
use seabed_core::PhysicalFilter;
use seabed_crypto::OreScheme;
use seabed_engine::{ColumnData, ColumnType, Partition, Schema, SelectionVector, Table};
use seabed_query::CompareOp;
use std::sync::OnceLock;

const ORE_DOMAIN: u64 = 16;

fn ore_symbols() -> &'static Vec<Vec<u8>> {
    static SYMS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    SYMS.get_or_init(|| {
        let scheme = OreScheme::new(&[9u8; 16]);
        (0..ORE_DOMAIN).map(|v| scheme.encrypt(v).symbols).collect()
    })
}

fn op_of(code: u8) -> CompareOp {
    match code % 6 {
        0 => CompareOp::Eq,
        1 => CompareOp::NotEq,
        2 => CompareOp::Lt,
        3 => CompareOp::LtEq,
        4 => CompareOp::Gt,
        _ => CompareOp::GtEq,
    }
}

/// Builds a one-partition table holding every column type the filters read.
fn partition(u64s: Vec<u64>, texts: Vec<String>, bytes: Vec<Vec<u8>>) -> Partition {
    let schema = Schema::new([
        ("u".to_string(), ColumnType::UInt64),
        ("s".to_string(), ColumnType::Utf8),
        ("b".to_string(), ColumnType::Bytes),
    ]);
    let table = Table::from_columns(
        schema,
        vec![
            ColumnData::UInt64(u64s),
            ColumnData::Utf8(texts),
            ColumnData::Bytes(bytes),
        ],
        1,
    );
    table.partitions.into_iter().next().expect("one partition")
}

/// The property: the kernel's surviving rows equal the scalar-match set.
fn assert_kernel_matches_scalar(filter: &PhysicalFilter, p: &Partition) -> Result<(), TestCaseError> {
    let n = p.num_rows();
    let mut sel = SelectionVector::all(n);
    if let Err(e) = filter.refine(p, &mut sel) {
        return Err(TestCaseError::Fail(format!("kernel failed on valid partition: {e}")));
    }
    let expected: Vec<u32> = (0..n)
        .filter(|&row| filter.matches(p, row))
        .map(|row| row as u32)
        .collect();
    prop_assert_eq!(sel.rows(), expected.as_slice());

    // Refinement from a narrowed selection is intersection: keep every third
    // row, then refine.
    let narrowed: Vec<u32> = (0..n as u32).step_by(3).collect();
    let mut sel = SelectionVector::from_sorted_rows(narrowed.clone());
    if let Err(e) = filter.refine(p, &mut sel) {
        return Err(TestCaseError::Fail(format!("kernel failed on valid partition: {e}")));
    }
    let expected: Vec<u32> = narrowed
        .into_iter()
        .filter(|&row| filter.matches(p, row as usize))
        .collect();
    prop_assert_eq!(sel.rows(), expected.as_slice());
    Ok(())
}

fn texts_of(seeds: &[u64]) -> Vec<String> {
    seeds.iter().map(|v| format!("t{}", v % 5)).collect()
}

fn ore_cells_of(seeds: &[u64]) -> Vec<Vec<u8>> {
    seeds
        .iter()
        .map(|v| ore_symbols()[(v % ORE_DOMAIN) as usize].clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plain_u64_kernel_equals_scalar_matches(
        cells in proptest::collection::vec(0u64..32, 0..300),
        opc in 0u8..6,
        value in 0u64..34,
    ) {
        let n = cells.len();
        let p = partition(cells, texts_of(&vec![0; n]), ore_cells_of(&vec![0; n]));
        let filter = PhysicalFilter::PlainU64 { column: 0, op: op_of(opc), value };
        assert_kernel_matches_scalar(&filter, &p)?;
    }

    #[test]
    fn det_tag_kernel_equals_scalar_matches(
        cells in proptest::collection::vec(0u64..8, 0..300),
        tag in 0u64..10,
    ) {
        let n = cells.len();
        let p = partition(cells, texts_of(&vec![0; n]), ore_cells_of(&vec![0; n]));
        let filter = PhysicalFilter::DetTag { column: 0, tag };
        assert_kernel_matches_scalar(&filter, &p)?;
    }

    #[test]
    fn plain_text_kernel_equals_scalar_matches(
        seeds in proptest::collection::vec(any::<u64>(), 0..300),
        pick in 0u64..7,
    ) {
        let n = seeds.len();
        // pick 5/6 never occur in the column: the none-match edge.
        let value = format!("t{pick}");
        let p = partition(vec![0; n], texts_of(&seeds), ore_cells_of(&vec![0; n]));
        let filter = PhysicalFilter::PlainText { column: 1, value };
        assert_kernel_matches_scalar(&filter, &p)?;
    }

    #[test]
    fn ope_kernel_equals_scalar_matches(
        seeds in proptest::collection::vec(any::<u64>(), 0..200),
        opc in 0u8..6,
        literal in 0u64..16,
    ) {
        let n = seeds.len();
        let p = partition(vec![0; n], texts_of(&vec![0; n]), ore_cells_of(&seeds));
        let filter = PhysicalFilter::Ope {
            column: 2,
            op: op_of(opc),
            ciphertext: seabed_crypto::OreCiphertext { symbols: ore_symbols()[literal as usize].clone() },
        };
        assert_kernel_matches_scalar(&filter, &p)?;
    }
}

#[test]
fn kernels_handle_empty_partitions() {
    let p = partition(vec![], vec![], vec![]);
    for filter in [
        PhysicalFilter::PlainU64 {
            column: 0,
            op: CompareOp::Lt,
            value: 5,
        },
        PhysicalFilter::DetTag { column: 0, tag: 5 },
        PhysicalFilter::PlainText {
            column: 1,
            value: "x".to_string(),
        },
        PhysicalFilter::Ope {
            column: 2,
            op: CompareOp::GtEq,
            ciphertext: seabed_crypto::OreCiphertext {
                symbols: ore_symbols()[0].clone(),
            },
        },
    ] {
        let mut sel = SelectionVector::all(0);
        filter.refine(&p, &mut sel).expect("empty partition is valid");
        assert!(sel.is_empty());
    }
}

#[test]
fn kernels_handle_all_match_and_none_match_edges() {
    let n = 100usize;
    let p = partition(
        (0..n as u64).collect(),
        texts_of(&vec![0; n]),
        ore_cells_of(&(0..n as u64).collect::<Vec<_>>()),
    );
    // All match: every u64 cell is < 1000.
    let all = PhysicalFilter::PlainU64 {
        column: 0,
        op: CompareOp::Lt,
        value: 1000,
    };
    let mut sel = SelectionVector::all(n);
    all.refine(&p, &mut sel).expect("valid");
    assert_eq!(sel.len(), n);
    // None match: no cell is > 1000.
    let none = PhysicalFilter::PlainU64 {
        column: 0,
        op: CompareOp::Gt,
        value: 1000,
    };
    let mut sel = SelectionVector::all(n);
    none.refine(&p, &mut sel).expect("valid");
    assert!(sel.is_empty());
    // Text that no row holds.
    let none_text = PhysicalFilter::PlainText {
        column: 1,
        value: "absent".to_string(),
    };
    let mut sel = SelectionVector::all(n);
    none_text.refine(&p, &mut sel).expect("valid");
    assert!(sel.is_empty());
}

#[test]
fn kernel_on_mistyped_column_is_an_error() {
    let p = partition(vec![1, 2, 3], texts_of(&[0, 0, 0]), ore_cells_of(&[0, 0, 0]));
    // u64 filter pointed at the Utf8 column.
    let filter = PhysicalFilter::PlainU64 {
        column: 1,
        op: CompareOp::Eq,
        value: 1,
    };
    let mut sel = SelectionVector::all(3);
    assert!(filter.refine(&p, &mut sel).is_err());
    // Scalar path deselects instead (types are validated before any scan).
    assert!(!filter.matches(&p, 0));
}
