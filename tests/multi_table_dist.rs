//! Multi-table / multi-tenant sharding: one coordinator and one worker pool
//! host several encrypted tables at once (ROADMAP item shipped by the
//! SeabedSession PR). Shard identifiers carry the table id on the wire, so
//! the same workers hold shards of every table under one epoch; queries
//! route by their `FROM` name; results are byte-identical to per-table
//! single-server execution — including under concurrent cross-table load —
//! and a `FROM` naming an unhosted table is a typed prepare-time error.

use seabed_core::{Catalog, PlainDataset, SeabedClient, SeabedServer, SeabedSession};
use seabed_dist::{spawn_worker, DistConfig, DistCoordinator};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_error::{SchemaError, SeabedError};
use seabed_net::{NetServer, ServiceConfig};
use seabed_query::{parse, ColumnSpec, Literal, PlannerConfig, Query};

/// Builds a (client, single server) pair for a table of `n` rows whose
/// values are derived from `salt`, so the two tables hold different data.
fn fixture(name: &str, n: usize, salt: u64) -> (SeabedClient, SeabedServer, PlainDataset) {
    let dataset = PlainDataset::new(name)
        .with_text_column("dept", (0..n).map(|i| format!("d{}", (i as u64 + salt) % 4)).collect())
        .with_uint_column("revenue", (0..n as u64).map(|i| (i * 13 + salt * 7) % 900).collect())
        .with_uint_column("ts", (0..n as u64).map(|i| (i * 7919 + salt) % 5_000).collect());
    let columns = vec![
        ColumnSpec::sensitive("dept"),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("ts"),
    ];
    let samples: Vec<Query> = [
        format!("SELECT SUM(revenue) FROM {name} WHERE dept = 'd1'"),
        format!("SELECT SUM(revenue) FROM {name} WHERE ts >= 3"),
        format!("SELECT dept, SUM(revenue) FROM {name} GROUP BY dept"),
    ]
    .iter()
    .map(|sql| parse(sql).expect("sample"))
    .collect();
    let mut client = SeabedClient::create_plan(name.as_bytes(), &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 9, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
    (client, server, dataset)
}

struct TwoTableCluster {
    workers: Vec<NetServer>,
    coordinator: DistCoordinator,
    sales: (SeabedClient, SeabedServer),
    ads: (SeabedClient, SeabedServer),
}

fn two_table_cluster(workers: usize) -> TwoTableCluster {
    let (sales_client, sales_server, _) = fixture("sales", 2_000, 1);
    let (ads_client, ads_server, _) = fixture("ads", 1_400, 1_000_003);
    let services: Vec<NetServer> = (0..workers)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker must start"))
        .collect();
    let addrs: Vec<_> = services.iter().map(|w| w.local_addr()).collect();
    let coordinator = DistCoordinator::connect_tables(
        &addrs,
        vec![
            ("sales".to_string(), sales_server.table().clone()),
            ("ads".to_string(), ads_server.table().clone()),
        ],
        DistConfig::default(),
    )
    .expect("coordinator must connect");
    TwoTableCluster {
        workers: services,
        coordinator,
        sales: (sales_client, sales_server),
        ads: (ads_client, ads_server),
    }
}

/// Prepared execution through the shared coordinator must be byte-identical
/// to the same statement against the table's own single server.
fn assert_identical(
    table: &str,
    client: &SeabedClient,
    single: &SeabedServer,
    coordinator: &DistCoordinator,
    sql: &str,
    params: &[Literal],
) {
    let via_single = SeabedSession::single(table, client.clone(), single);
    let via_dist = SeabedSession::single(table, client.clone(), coordinator);
    let p1 = via_single.prepare(sql).expect("prepare single");
    let p2 = via_dist.prepare(sql).expect("prepare dist");
    let (_, r1) = via_single.execute_encrypted(&p1, params).expect("single execute");
    let (_, r2) = via_dist.execute_encrypted(&p2, params).expect("dist execute");
    assert_eq!(r1.groups, r2.groups, "{table}: {sql}");
    assert_eq!(r1.result_bytes, r2.result_bytes, "{table}: {sql}");
}

#[test]
fn one_pool_serves_two_tables_byte_identically() {
    let cluster = two_table_cluster(3);
    let coordinator = &cluster.coordinator;
    assert_eq!(coordinator.table_names(), vec!["sales".to_string(), "ads".to_string()]);
    assert!(coordinator.num_shards() >= 2, "both tables must be sharded");

    for (sql, params) in [
        ("SELECT SUM(revenue) FROM sales", vec![]),
        (
            "SELECT SUM(revenue) FROM sales WHERE ts >= ?",
            vec![Literal::Integer(2_500)],
        ),
        ("SELECT dept, SUM(revenue) FROM sales GROUP BY dept", vec![]),
    ] {
        assert_identical("sales", &cluster.sales.0, &cluster.sales.1, coordinator, sql, &params);
    }
    for (sql, params) in [
        ("SELECT SUM(revenue) FROM ads", vec![]),
        (
            "SELECT SUM(revenue) FROM ads WHERE dept = ?",
            vec![Literal::Text("d3".to_string())],
        ),
        ("SELECT dept, SUM(revenue) FROM ads GROUP BY dept", vec![]),
    ] {
        assert_identical("ads", &cluster.ads.0, &cluster.ads.1, coordinator, sql, &params);
    }

    // Every worker holds shards, and shards of both tables are spread over
    // the pool (not all of one table piled on one worker).
    let summaries = coordinator.worker_summaries();
    assert!(
        summaries.iter().all(|s| s.alive && !s.shards.is_empty()),
        "{summaries:?}"
    );
    let tables_seen: std::collections::HashSet<u32> = summaries
        .iter()
        .flat_map(|s| s.shards.iter().map(|&(t, _)| t))
        .collect();
    assert_eq!(tables_seen.len(), 2, "{summaries:?}");

    for w in cluster.workers {
        w.shutdown();
    }
}

/// Concurrent sessions over both tables through the one coordinator: every
/// thread's results must match that table's single-server reference.
#[test]
fn concurrent_cross_table_queries_are_isolated() {
    let cluster = two_table_cluster(3);
    let coordinator = &cluster.coordinator;

    // Reference decrypted rows per table.
    let reference = |table: &str, client: &SeabedClient, server: &SeabedServer| {
        let session = SeabedSession::single(table, client.clone(), server);
        session
            .query(&format!("SELECT dept, SUM(revenue) FROM {table} GROUP BY dept"), &[])
            .expect("reference query")
            .rows
    };
    let sales_rows = reference("sales", &cluster.sales.0, &cluster.sales.1);
    let ads_rows = reference("ads", &cluster.ads.0, &cluster.ads.1);
    assert_ne!(sales_rows, ads_rows, "the two tenants must hold different data");

    std::thread::scope(|scope| {
        for round in 0..3 {
            let sales_rows = &sales_rows;
            let ads_rows = &ads_rows;
            let sales_client = &cluster.sales.0;
            let ads_client = &cluster.ads.0;
            scope.spawn(move || {
                let session = SeabedSession::single("sales", sales_client.clone(), coordinator);
                let prepared = session
                    .prepare("SELECT dept, SUM(revenue) FROM sales GROUP BY dept")
                    .expect("prepare");
                for _ in 0..=round {
                    let rows = session.execute(&prepared, &[]).expect("sales execute").rows;
                    assert_eq!(&rows, sales_rows);
                }
            });
            scope.spawn(move || {
                let session = SeabedSession::single("ads", ads_client.clone(), coordinator);
                let prepared = session
                    .prepare("SELECT dept, SUM(revenue) FROM ads GROUP BY dept")
                    .expect("prepare");
                for _ in 0..=round {
                    let rows = session.execute(&prepared, &[]).expect("ads execute").rows;
                    assert_eq!(&rows, ads_rows);
                }
            });
        }
    });

    for w in cluster.workers {
        w.shutdown();
    }
}

/// A multi-table session over the coordinator: one catalog holding both
/// tenants' keys, queries routed by `FROM`, unknown tables rejected before
/// anything is scattered.
#[test]
fn multi_table_session_routes_and_rejects() {
    let cluster = two_table_cluster(2);
    let coordinator = &cluster.coordinator;
    let catalog = Catalog::new()
        .with_table("sales", cluster.sales.0.clone())
        .with_table("ads", cluster.ads.0.clone());
    let session = SeabedSession::new(catalog, coordinator);

    let sales_total = session.query("SELECT SUM(revenue) FROM sales", &[]).expect("sales");
    let ads_total = session.query("SELECT SUM(revenue) FROM ads", &[]).expect("ads");
    assert_ne!(sales_total.rows, ads_total.rows);

    // Unknown table: typed Schema error at prepare, from the catalog; the
    // coordinator independently enforces the same rule.
    assert!(matches!(
        session.prepare("SELECT SUM(revenue) FROM ghosts"),
        Err(SeabedError::Schema(SchemaError::UnknownTable(_)))
    ));
    use seabed_core::QueryTarget;
    assert!(matches!(
        coordinator.schema_of("ghosts"),
        Err(SeabedError::Schema(SchemaError::UnknownTable(_)))
    ));

    for w in cluster.workers {
        w.shutdown();
    }
}

/// Registering the same table name twice is rejected up front.
#[test]
fn duplicate_table_names_are_rejected() {
    let (_, server, _) = fixture("sales", 200, 1);
    let worker = spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker");
    let outcome = DistCoordinator::connect_tables(
        &[worker.local_addr()],
        vec![
            ("sales".to_string(), server.table().clone()),
            ("sales".to_string(), server.table().clone()),
        ],
        DistConfig::default(),
    );
    assert!(
        matches!(&outcome, Err(SeabedError::Dist { message, .. }) if message.contains("twice")),
        "{:?}",
        outcome.err()
    );
    worker.shutdown();
}
