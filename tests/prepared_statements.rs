//! Prepared-statement lifecycle robustness on the wire.
//!
//! The server's statement store is capacity-bounded and forgets handles on
//! restart, so the client must treat [`SeabedError::StaleStatement`] as a
//! recoverable signal: re-prepare once, retry once, and only surface the
//! error if the server stays stale. A scripted fake server pins the exact
//! recovery sequence (regression test for the transparent re-prepare), and a
//! real `NetServer` with a capacity-1 store exercises eviction end to end
//! through a `SeabedSession`.

use seabed_core::{EncryptedAggregate, GroupResult, PlainDataset, SeabedClient, SeabedServer, SeabedSession};
use seabed_core::{ResultValue, ServerResponse};
use seabed_engine::{Cluster, ClusterConfig, ExecStats};
use seabed_error::SeabedError;
use seabed_net::wire::{self, Frame, HEADER_LEN};
use seabed_net::{NetServer, RemoteSeabedClient, ServiceConfig};
use seabed_query::{parse, ColumnSpec, Literal, PlannerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn read_frame(stream: &mut TcpStream) -> Option<Frame> {
    let mut header_bytes = [0u8; HEADER_LEN];
    stream.read_exact(&mut header_bytes).ok()?;
    let header = wire::decode_header(&header_bytes, wire::DEFAULT_MAX_FRAME_LEN).ok()?;
    let mut payload = vec![0u8; header.payload_len as usize];
    stream.read_exact(&mut payload).ok()?;
    wire::decode_payload(header.kind, &payload).ok()
}

fn send_frame(stream: &mut TcpStream, frame: &Frame) {
    let bytes = wire::encode_frame(frame, wire::DEFAULT_MAX_FRAME_LEN).expect("encode");
    let _ = stream.write_all(&bytes);
}

fn canned_response() -> ServerResponse {
    ServerResponse {
        groups: vec![GroupResult {
            key: vec![],
            aggregates: vec![EncryptedAggregate::Count { rows: 7 }],
        }],
        stats: ExecStats::default(),
        result_bytes: 8,
    }
}

/// Counters the fake server exposes so tests can pin the recovery sequence.
#[derive(Default)]
struct FakeCounters {
    prepares: AtomicU64,
    executes: AtomicU64,
}

/// A scripted statement server: answers the schema handshake, hands out
/// handles on PREPARE, and replies `StaleStatement` to the first
/// `stale_executes` EXECUTE frames before serving real responses.
fn fake_statement_server(stale_executes: u64) -> (SocketAddr, Arc<FakeCounters>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let counters = Arc::new(FakeCounters::default());
    let thread_counters = Arc::clone(&counters);
    let handle = std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        while let Some(frame) = read_frame(&mut stream) {
            match frame {
                Frame::SchemaRequest => send_frame(
                    &mut stream,
                    &Frame::Schema(seabed_engine::Schema::new([(
                        "x".to_string(),
                        seabed_engine::ColumnType::UInt64,
                    )])),
                ),
                Frame::PrepareStatement { .. } => {
                    let n = thread_counters.prepares.fetch_add(1, Ordering::SeqCst) + 1;
                    send_frame(&mut stream, &Frame::StatementPrepared { handle: 1000 + n });
                }
                Frame::ExecuteStatement { handle, .. } => {
                    let n = thread_counters.executes.fetch_add(1, Ordering::SeqCst) + 1;
                    if n <= stale_executes {
                        send_frame(&mut stream, &Frame::Error(SeabedError::StaleStatement(handle)));
                    } else {
                        send_frame(&mut stream, &Frame::Response(canned_response()));
                    }
                }
                _ => return,
            }
        }
    });
    (addr, counters, handle)
}

fn trivial_client() -> SeabedClient {
    let columns = vec![ColumnSpec::public("x")];
    let samples = vec![parse("SELECT COUNT(*) FROM t").expect("sample")];
    SeabedClient::create_plan(b"stale", &columns, &samples, &PlannerConfig::default())
}

fn count_statement() -> seabed_query::TranslatedQuery {
    let client = trivial_client();
    let plan = client.plan().clone();
    let query = parse("SELECT COUNT(*) FROM t").expect("parse");
    seabed_query::translate(&query, &plan, &seabed_query::TranslateOptions::default()).expect("translate")
}

/// One stale EXECUTE: the client re-prepares exactly once and the retry
/// succeeds — the caller never sees the staleness.
#[test]
fn client_transparently_reprepares_once_on_stale_handle() {
    let (addr, counters, server) = fake_statement_server(1);
    let remote = RemoteSeabedClient::connect(addr, trivial_client()).expect("connect");
    let statement = count_statement();

    let (response, _) = remote
        .execute_prepared_measured(&statement, 42, &[])
        .expect("stale handle must be recovered transparently");
    assert_eq!(response, canned_response());
    // Sequence on the wire: PREPARE, EXECUTE (stale), PREPARE, EXECUTE (ok).
    assert_eq!(counters.prepares.load(Ordering::SeqCst), 2);
    assert_eq!(counters.executes.load(Ordering::SeqCst), 2);

    // A later execution reuses the refreshed handle: no further prepares.
    let (response, _) = remote.execute_prepared_measured(&statement, 42, &[]).expect("execute");
    assert_eq!(response, canned_response());
    assert_eq!(counters.prepares.load(Ordering::SeqCst), 2);
    drop(remote);
    server.join().expect("fake server");
}

/// A server that stays stale after the re-prepare: the client retries exactly
/// once, then surfaces the typed error instead of looping.
#[test]
fn repeated_staleness_surfaces_after_one_retry() {
    let (addr, counters, server) = fake_statement_server(u64::MAX);
    let remote = RemoteSeabedClient::connect(addr, trivial_client()).expect("connect");
    let statement = count_statement();

    let outcome = remote.execute_prepared_measured(&statement, 7, &[]);
    assert!(matches!(outcome, Err(SeabedError::StaleStatement(_))), "{outcome:?}");
    // Exactly one recovery attempt: PREPARE, EXECUTE, PREPARE, EXECUTE.
    assert_eq!(counters.prepares.load(Ordering::SeqCst), 2);
    assert_eq!(counters.executes.load(Ordering::SeqCst), 2);
    drop(remote);
    server.join().expect("fake server");
}

/// The remote handle cache keys on the statement's *plan content*, not the
/// caller's statement id: a different plan under the same id (re-planned
/// SQL, or an SQL-hash collision) must trigger a fresh registration and run
/// its own plan — never the previously registered one.
#[test]
fn changed_plan_under_same_statement_id_registers_fresh() {
    let n = 120usize;
    let dataset = PlainDataset::new("t").with_uint_column("m", (1..=n as u64).collect());
    let columns = vec![ColumnSpec::sensitive("m")];
    let samples = vec![parse("SELECT SUM(m) FROM t").expect("sample")];
    let mut client = SeabedClient::create_plan(b"replan", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 4, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(4)));
    let net = NetServer::serve(server, "127.0.0.1:0", ServiceConfig::default()).expect("serve");
    let remote = RemoteSeabedClient::connect(net.local_addr(), client.clone()).expect("connect");

    let plan = client.plan().clone();
    let opts = seabed_query::TranslateOptions::default();
    let count_plan =
        seabed_query::translate(&parse("SELECT COUNT(*) FROM t").expect("parse"), &plan, &opts).expect("translate");
    let sum_plan =
        seabed_query::translate(&parse("SELECT SUM(m) FROM t").expect("parse"), &plan, &opts).expect("translate");

    // Same statement_id (99) for two different plans: each must execute its
    // own plan.
    let (count_resp, _) = remote
        .execute_prepared_measured(&count_plan, 99, &[])
        .expect("count plan");
    assert!(
        matches!(
            count_resp.groups[0].aggregates[0],
            EncryptedAggregate::Count { rows } if rows == n as u64
        ),
        "{:?}",
        count_resp.groups[0].aggregates[0]
    );
    let (sum_resp, _) = remote.execute_prepared_measured(&sum_plan, 99, &[]).expect("sum plan");
    assert!(
        matches!(&sum_resp.groups[0].aggregates[0], EncryptedAggregate::AsheSum { .. }),
        "the second plan must run, not the cached first one: {:?}",
        sum_resp.groups[0].aggregates[0]
    );

    let stats = net.shutdown();
    assert_eq!(stats.statements_prepared, 2, "each distinct plan registers once");
}

/// End to end against a real server with a capacity-1 statement store:
/// preparing a second statement evicts the first; executing the first again
/// triggers the transparent re-prepare and still returns correct data.
#[test]
fn eviction_on_a_real_server_is_recovered_through_the_session() {
    let n = 300usize;
    let dataset = PlainDataset::new("sales")
        .with_uint_column("revenue", (0..n as u64).map(|i| i % 100).collect())
        .with_uint_column("ts", (0..n as u64).collect());
    let columns = vec![ColumnSpec::sensitive("revenue"), ColumnSpec::sensitive("ts")];
    let samples = vec![
        parse("SELECT SUM(revenue) FROM sales WHERE ts >= 10").expect("sample"),
        parse("SELECT COUNT(*) FROM sales WHERE ts >= 10").expect("sample"),
    ];
    let mut client = SeabedClient::create_plan(b"evict", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 4, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(4)));
    let expected_sum = |min_ts: u64| -> u64 { (0..n as u64).filter(|&i| i >= min_ts).map(|i| i % 100).sum() };

    let net = NetServer::serve(server, "127.0.0.1:0", ServiceConfig::default().statement_capacity(1)).expect("serve");
    let remote = RemoteSeabedClient::connect(net.local_addr(), client.clone()).expect("connect");
    let session = SeabedSession::single("sales", client, &remote);

    let sum = session
        .prepare("SELECT SUM(revenue) FROM sales WHERE ts >= ?")
        .expect("prepare sum");
    let count = session
        .prepare("SELECT COUNT(*) FROM sales WHERE ts >= ?")
        .expect("prepare count");

    // Register + run the sum statement, then the count statement (evicting
    // the sum's handle on the capacity-1 server), then the sum again.
    let r = session.execute(&sum, &[Literal::Integer(100)]).expect("sum 1");
    assert_eq!(r.rows, vec![vec![ResultValue::UInt(expected_sum(100))]]);
    let r = session.execute(&count, &[Literal::Integer(200)]).expect("count");
    assert_eq!(r.rows, vec![vec![ResultValue::UInt(100)]]);
    let r = session
        .execute(&sum, &[Literal::Integer(250)])
        .expect("evicted handle must be recovered transparently");
    assert_eq!(r.rows, vec![vec![ResultValue::UInt(expected_sum(250))]]);

    let stats = net.shutdown();
    // Three registrations: sum, count, and the transparent re-prepare of sum.
    assert_eq!(stats.statements_prepared, 3);
    assert!(stats.statements_evicted >= 2);
    assert_eq!(stats.requests_served, 3);
}
