//! Negative-path integration tests for the `SeabedError` spine: malformed or
//! unsupported queries must surface as typed errors from `SeabedClient::query`
//! — never as panics — with the variant naming the layer that failed.

use seabed_core::{PlainDataset, SeabedClient, SeabedServer};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_error::{SchemaError, SeabedError};
use seabed_query::{parse, ColumnSpec, PlannerConfig};

fn build_world() -> Result<(SeabedClient, SeabedServer), SeabedError> {
    let dataset = PlainDataset::new("sales")
        .with_text_column(
            "country",
            ["USA", "USA", "Canada", "India"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        )
        .with_uint_column("revenue", vec![10, 20, 30, 40])
        .with_uint_column("ts", vec![1, 2, 3, 4]);
    let distribution = dataset
        .distribution("country")
        .ok_or_else(|| SeabedError::engine("fixture is missing the country column"))?;
    let columns = vec![
        ColumnSpec::sensitive_with_distribution("country", distribution),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("ts"),
    ];
    let mut samples = Vec::new();
    for sql in [
        "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
        "SELECT SUM(revenue) FROM sales WHERE ts >= 2",
    ] {
        samples.push(parse(sql)?);
    }
    let mut client = SeabedClient::create_plan(b"err-master", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 2, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(4)));
    Ok((client, server))
}

#[test]
fn malformed_sql_returns_parse_error() -> Result<(), SeabedError> {
    let (client, server) = build_world()?;
    for bad in [
        "",
        "not sql at all",
        "SELECT FROM sales",
        "SELECT SUM(revenue FROM sales",
        "SELECT SUM(revenue) FROM sales WHERE ts >",
        "SELECT SUM(revenue) FROM sales trailing ~ garbage",
    ] {
        let outcome = client.query(&server, bad);
        assert!(
            matches!(outcome, Err(SeabedError::Parse(_))),
            "{bad:?} should be a parse error, got {outcome:?}"
        );
    }
    Ok(())
}

#[test]
fn parse_errors_carry_position_and_message() -> Result<(), SeabedError> {
    let (client, server) = build_world()?;
    let Err(SeabedError::Parse(err)) = client.query(&server, "SELECT SUM(revenue) FROM sales WHERE ts @ 3") else {
        return Err(SeabedError::engine("expected a parse error"));
    };
    assert!(err.message.contains("unexpected character"), "{err}");
    assert!(err.position > 0, "{err}");
    Ok(())
}

#[test]
fn unknown_column_returns_schema_error() -> Result<(), SeabedError> {
    let (client, server) = build_world()?;
    for bad in [
        "SELECT SUM(no_such_measure) FROM sales",
        "SELECT COUNT(*) FROM sales WHERE no_such_dim = 3",
        "SELECT no_such_key, SUM(revenue) FROM sales GROUP BY no_such_key",
    ] {
        let outcome = client.query(&server, bad);
        assert!(
            matches!(&outcome, Err(SeabedError::Schema(SchemaError::UnknownColumn(c))) if bad.contains(c.as_str())),
            "{bad:?} should be an unknown-column schema error, got {outcome:?}"
        );
    }
    Ok(())
}

#[test]
fn unsupported_operations_return_translate_error() -> Result<(), SeabedError> {
    let (client, server) = build_world()?;
    for bad in [
        // Filtering on an ASHE-encrypted measure.
        "SELECT COUNT(*) FROM sales WHERE revenue = 10",
        // Range predicate over a SPLASHE dimension.
        "SELECT SUM(revenue) FROM sales WHERE country > 'USA'",
        // MIN over an ASHE (not OPE) column.
        "SELECT MIN(revenue) FROM sales",
    ] {
        let outcome = client.query(&server, bad);
        assert!(
            matches!(outcome, Err(SeabedError::Translate(_))),
            "{bad:?} should be a translate error, got {outcome:?}"
        );
    }
    Ok(())
}

#[test]
fn server_rejects_plans_for_foreign_schemas() -> Result<(), SeabedError> {
    // A plan translated against one schema executed against a server that
    // never stored those columns: the untrusted boundary must answer with a
    // typed error, not a panic.
    let (client, server) = build_world()?;
    let (_, translated, _) = client.prepare(&server, "SELECT SUM(revenue) FROM sales")?;

    let other = PlainDataset::new("other").with_uint_column("x", vec![1, 2, 3]);
    let columns = vec![ColumnSpec::sensitive("x")];
    let samples = vec![parse("SELECT SUM(x) FROM other")?];
    let mut other_client = SeabedClient::create_plan(b"other", &columns, &samples, &PlannerConfig::default());
    let other_encrypted = other_client.encrypt_dataset(&other, 1, &mut rand::rng());
    let other_server = SeabedServer::new(
        other_encrypted.table.clone(),
        Cluster::new(ClusterConfig::with_workers(2)),
    );

    let outcome = other_server.execute(&translated, &[]);
    assert!(
        matches!(outcome, Err(SeabedError::Schema(_))),
        "foreign plan should fail with a schema error, got {:?}",
        outcome.map(|r| r.groups.len())
    );
    Ok(())
}

#[test]
fn errors_format_with_layer_prefix() -> Result<(), SeabedError> {
    let (client, server) = build_world()?;
    let parse_err = client.query(&server, "garbage").map(|_| ()).map_err(|e| e.to_string());
    assert!(
        parse_err.as_ref().is_err_and(|m| m.starts_with("parse: ")),
        "{parse_err:?}"
    );
    let schema_err = client
        .query(&server, "SELECT SUM(missing) FROM sales")
        .map(|_| ())
        .map_err(|e| e.to_string());
    assert!(
        schema_err.as_ref().is_err_and(|m| m.starts_with("schema: ")),
        "{schema_err:?}"
    );
    Ok(())
}
