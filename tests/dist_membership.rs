//! Elastic membership tests for `seabed-dist`: workers joining a live
//! cluster (epoch-fenced rebalancing moves only shards whose replica set
//! changed), workers leaving (replica slots re-homed onto survivors), and
//! the safety rails — a shard never loses its last copy, and every query
//! before, during, and after a membership change stays byte-identical to
//! single-server execution.

use seabed_core::{SeabedServer, ServerResponse};
use seabed_dist::{spawn_worker, DistConfig, DistCoordinator};
use seabed_engine::{Cluster, ClusterConfig, ColumnData, ColumnType, Schema, Table};
use seabed_error::SeabedError;
use seabed_net::ServiceConfig;
use seabed_query::{ServerAggregate, SupportCategory, TranslatedQuery};
use std::net::SocketAddr;

fn test_table(rows: u64, partitions: usize) -> Table {
    Table::from_columns(
        Schema::new([
            ("m__ashe".to_string(), ColumnType::UInt64),
            ("g".to_string(), ColumnType::UInt64),
        ]),
        vec![
            ColumnData::UInt64((0..rows).map(|i| i * 3 + 1).collect()),
            ColumnData::UInt64((0..rows).map(|i| i % 7).collect()),
        ],
        partitions,
    )
}

fn sum_query(group_by: bool) -> TranslatedQuery {
    TranslatedQuery {
        base_table: "t".to_string(),
        filters: vec![],
        aggregates: vec![
            ServerAggregate::AsheSum {
                column: "m__ashe".to_string(),
            },
            ServerAggregate::CountRows,
        ],
        group_by: if group_by {
            vec![seabed_query::GroupByColumn {
                column: "g".to_string(),
                physical_column: "g".to_string(),
                encrypted: false,
            }]
        } else {
            vec![]
        },
        group_inflation: 1,
        client_post: vec![],
        preserve_row_ids: true,
        category: SupportCategory::ServerOnly,
        params: vec![],
    }
}

fn local_answer(table: &Table, query: &TranslatedQuery) -> ServerResponse {
    SeabedServer::new(table.clone(), Cluster::new(ClusterConfig::with_workers(4)))
        .execute(query, &[])
        .expect("local execution")
}

/// A joining worker is rebalanced onto: it receives replica slots moved off
/// the most-loaded donors (load-then-unload, nothing else touched), the
/// cache fencing epoch is bumped so pre-join partials never answer again,
/// and queries before and after the join are byte-identical.
#[test]
fn joining_worker_takes_replica_slots_and_answers_identically() {
    let table = test_table(2_000, 8);
    let query = sum_query(true);
    let expected = local_answer(&table, &query);

    let mut workers: Vec<_> = (0..3)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker"))
        .collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.local_addr()).collect();
    let coordinator = DistCoordinator::connect(&addrs, table, DistConfig::default()).expect("connect");

    let before = coordinator.execute(&query, &[]).expect("pre-join query");
    assert_eq!(expected.groups, before.groups);
    assert_eq!(expected.result_bytes, before.result_bytes);
    let cache_epoch_before = coordinator.cache_epoch();

    // A fourth worker joins the live cluster.
    workers.push(spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("joiner"));
    let joiner = coordinator
        .join_worker(workers.last().expect("joiner").local_addr())
        .expect("join");
    assert_eq!(joiner, 3, "worker indices are stable; the joiner appends");

    let summaries = coordinator.worker_summaries();
    assert_eq!(summaries.len(), 4);
    assert!(
        !summaries[joiner].shards.is_empty(),
        "the joiner must have been rebalanced onto: {summaries:?}"
    );
    // Rebalancing moved slots, it did not duplicate them: the total replica
    // slot count is unchanged (3 shards × R=2).
    let total_slots: usize = summaries.iter().map(|s| s.shards.len()).sum();
    assert_eq!(total_slots, 6, "{summaries:?}");
    assert!(
        coordinator.cache_epoch() > cache_epoch_before,
        "a membership change must fence the partial cache"
    );

    let after = coordinator.execute(&query, &[]).expect("post-join query");
    assert_eq!(expected.groups, after.groups);
    assert_eq!(expected.result_bytes, after.result_bytes);
    for w in workers {
        w.shutdown();
    }
}

/// A leaving worker's replica slots are re-homed onto the least-loaded
/// survivors *before* its connection drops: every shard keeps R live
/// copies, the leaver is retired in place (never selected again), the cache
/// is fenced, and queries stay byte-identical. Leaving twice is idempotent.
#[test]
fn leaving_worker_rehomes_replicas_and_stays_identical() {
    let table = test_table(2_000, 8);
    let query = sum_query(false);
    let expected = local_answer(&table, &query);

    let workers: Vec<_> = (0..4)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker"))
        .collect();
    let addrs: Vec<SocketAddr> = workers.iter().map(|w| w.local_addr()).collect();
    let coordinator = DistCoordinator::connect(&addrs, table, DistConfig::default()).expect("connect");

    let before = coordinator.execute(&query, &[]).expect("pre-leave query");
    assert_eq!(expected.groups, before.groups);
    let cache_epoch_before = coordinator.cache_epoch();

    coordinator.leave_worker(1).expect("leave");
    let summaries = coordinator.worker_summaries();
    assert!(!summaries[1].alive, "the leaver must be retired");
    assert!(
        summaries[1].shards.is_empty(),
        "no replica set may still name the leaver: {summaries:?}"
    );
    // Every shard kept its full replica set: 4 shards × R=2 slots, all on
    // the three survivors.
    let total_slots: usize = summaries.iter().map(|s| s.shards.len()).sum();
    assert_eq!(total_slots, 8, "{summaries:?}");
    assert!(coordinator.cache_epoch() > cache_epoch_before);

    let after = coordinator.execute(&query, &[]).expect("post-leave query");
    assert_eq!(expected.groups, after.groups);
    assert_eq!(expected.result_bytes, after.result_bytes);

    // Idempotent: leaving an already-departed worker is a no-op.
    coordinator.leave_worker(1).expect("second leave is a no-op");

    for w in workers {
        w.shutdown();
    }
}

/// The safety rail: a worker holding a shard's only copy cannot leave when
/// no other live worker could take a replacement — the call fails with a
/// typed error and the membership (and queries) are unchanged.
#[test]
fn sole_replica_holder_cannot_leave() {
    let table = test_table(800, 4);
    let query = sum_query(false);
    let expected = local_answer(&table, &query);

    let worker = spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker");
    let config = DistConfig::default().replication(1);
    let coordinator = DistCoordinator::connect(&[worker.local_addr()], table, config).expect("connect");

    let outcome = coordinator.leave_worker(0);
    assert!(matches!(outcome, Err(SeabedError::Dist { .. })), "{outcome:?}");
    assert!(
        coordinator.worker_summaries()[0].alive,
        "a refused departure must leave the worker in service"
    );
    let response = coordinator.execute(&query, &[]).expect("query after refused leave");
    assert_eq!(expected.groups, response.groups);
    worker.shutdown();
}
