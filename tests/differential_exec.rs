//! Differential query-fuzzing suite for the execution engine.
//!
//! The vectorized scan (`ExecMode::Vectorized`) is only allowed to be fast:
//! it must compute *exactly* what the scalar reference path and a plaintext
//! evaluation of the same query compute. This suite generates random tables
//! and random filter/aggregate/group-by queries and pins all three against
//! each other:
//!
//! 1. `scalar_vectorized_and_reference_agree` — 256 randomized cases over
//!    hand-built tables covering every filter variant (plain u64 with all six
//!    operators, string equality, DET tags, ORE range predicates), SUM /
//!    COUNT / MIN / MAX aggregates, 0–2 group-by columns and group inflation.
//!    The scalar and vectorized responses must be *identical* (keys,
//!    aggregate values, ID lists, byte accounting), and after de-inflation
//!    they must match an independent plaintext evaluation (sums, group keys,
//!    group counts, exact selected-row ID sets, MIN/MAX winners).
//! 2. `server_matches_noenc_baseline` — pins both modes against
//!    `seabed_core::baseline::NoEncSystem` for global and group-by sums.
//! 3. `full_pipeline_modes_match_plaintext` — end-to-end through
//!    `SeabedClient` with real ASHE/SPLASHE/DET/ORE encryption: the decrypted
//!    answers of both modes must equal a plaintext evaluation of the SQL.

use proptest::prelude::*;
use seabed_ashe::IdSet;
use seabed_core::{
    EncryptedAggregate, NoEncSystem, PhysicalFilter, PlainDataset, ResultValue, SeabedClient, SeabedServer,
    ServerResponse,
};
use seabed_crypto::{OreCiphertext, OreScheme};
use seabed_engine::{Cluster, ClusterConfig, ColumnData, ColumnType, ExecMode, Schema, Table};
use seabed_query::planner::{ColumnSpec, PlannerConfig};
use seabed_query::{parse, CompareOp, GroupByColumn, ServerAggregate, SupportCategory, TranslatedQuery};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Domain of the ORE-encrypted column; ciphertexts are cached because ORE
/// encryption costs 64 PRF evaluations per value.
const OPE_DOMAIN: u64 = 32;

fn ore_cts() -> &'static Vec<OreCiphertext> {
    static CTS: OnceLock<Vec<OreCiphertext>> = OnceLock::new();
    CTS.get_or_init(|| {
        let scheme = OreScheme::new(&[42u8; 16]);
        (0..OPE_DOMAIN).map(|v| scheme.encrypt(v)).collect()
    })
}

/// SplitMix64: deterministic per-(seed, row, salt) column data.
fn mix(seed: u64, row: u64, salt: u64) -> u64 {
    let mut z = seed ^ row.wrapping_mul(0x9e3779b97f4a7c15) ^ salt.wrapping_mul(0xd1b54a32d192ed03);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

const TEXTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// One randomly generated table, kept in plaintext form for the reference
/// evaluation and as an engine `Table` for the servers. The "ASHE" words are
/// plain values — the server folds them without interpreting them, so the
/// differential property is exactly wrapping-sum equality.
struct FuzzTable {
    rows: usize,
    words: Vec<u64>,
    fvals: Vec<u64>,
    svals: Vec<String>,
    dvals: Vec<u64>,
    ovals: Vec<u64>,
    gvals: Vec<u64>,
    hvals: Vec<u64>,
    ope_words: Vec<u64>,
    table: Table,
}

impl FuzzTable {
    fn generate(seed: u64, rows: usize, partitions: usize) -> FuzzTable {
        let words: Vec<u64> = (0..rows as u64).map(|i| mix(seed, i, 1)).collect();
        let fvals: Vec<u64> = (0..rows as u64).map(|i| mix(seed, i, 2) % 16).collect();
        let svals: Vec<String> = (0..rows as u64)
            .map(|i| TEXTS[(mix(seed, i, 3) % TEXTS.len() as u64) as usize].to_string())
            .collect();
        let dvals: Vec<u64> = (0..rows as u64).map(|i| mix(seed, i, 4) % 8).collect();
        let ovals: Vec<u64> = (0..rows as u64).map(|i| mix(seed, i, 5) % OPE_DOMAIN).collect();
        let gvals: Vec<u64> = (0..rows as u64).map(|i| mix(seed, i, 6) % 6).collect();
        let hvals: Vec<u64> = (0..rows as u64).map(|i| mix(seed, i, 7) % 4).collect();
        let ope_words: Vec<u64> = (0..rows as u64).map(|i| mix(seed, i, 8)).collect();
        let schema = Schema::new([
            ("f".to_string(), ColumnType::UInt64),
            ("s".to_string(), ColumnType::Utf8),
            ("d__det".to_string(), ColumnType::UInt64),
            ("o__ope".to_string(), ColumnType::Bytes),
            ("m__ashe".to_string(), ColumnType::UInt64),
            ("g".to_string(), ColumnType::UInt64),
            ("h".to_string(), ColumnType::UInt64),
            ("o__ope_val".to_string(), ColumnType::UInt64),
        ]);
        let table = Table::from_columns(
            schema,
            vec![
                ColumnData::UInt64(fvals.clone()),
                ColumnData::Utf8(svals.clone()),
                ColumnData::UInt64(dvals.clone()),
                ColumnData::Bytes(ovals.iter().map(|&v| ore_cts()[v as usize].symbols.clone()).collect()),
                ColumnData::UInt64(words.clone()),
                ColumnData::UInt64(gvals.clone()),
                ColumnData::UInt64(hvals.clone()),
                ColumnData::UInt64(ope_words.clone()),
            ],
            partitions,
        );
        FuzzTable {
            rows,
            words,
            fvals,
            svals,
            dvals,
            ovals,
            gvals,
            hvals,
            ope_words,
            table,
        }
    }

    fn ope_word(&self, row: usize) -> u64 {
        self.ope_words[row]
    }
}

fn op_of(code: u8) -> CompareOp {
    match code % 6 {
        0 => CompareOp::Eq,
        1 => CompareOp::NotEq,
        2 => CompareOp::Lt,
        3 => CompareOp::LtEq,
        4 => CompareOp::Gt,
        _ => CompareOp::GtEq,
    }
}

/// Independent plaintext evaluation of a filter: reads the generated column
/// data directly. The ORE arm compares *plaintext* values, so it also
/// cross-checks the ORE comparison itself.
fn reference_matches(t: &FuzzTable, row: usize, filter: &FuzzFilter) -> bool {
    match filter {
        FuzzFilter::PlainU64(op, v) => op.eval_u64(t.fvals[row], *v),
        FuzzFilter::PlainText(s) => t.svals[row] == *s,
        FuzzFilter::DetTag(tag) => t.dvals[row] == *tag,
        FuzzFilter::Ope(op, v) => op.eval_ordering(t.ovals[row].cmp(v)),
    }
}

enum FuzzFilter {
    PlainU64(CompareOp, u64),
    PlainText(String),
    DetTag(u64),
    Ope(CompareOp, u64),
}

impl FuzzFilter {
    fn physical(&self) -> PhysicalFilter {
        match self {
            FuzzFilter::PlainU64(op, v) => PhysicalFilter::PlainU64 {
                column: 0,
                op: *op,
                value: *v,
            },
            FuzzFilter::PlainText(s) => PhysicalFilter::PlainText {
                column: 1,
                value: s.clone(),
            },
            FuzzFilter::DetTag(tag) => PhysicalFilter::DetTag { column: 2, tag: *tag },
            FuzzFilter::Ope(op, v) => PhysicalFilter::Ope {
                column: 3,
                op: *op,
                ciphertext: ore_cts()[*v as usize].clone(),
            },
        }
    }
}

fn query(group_cols: &[&str], inflation: u32, extreme: Option<bool>) -> TranslatedQuery {
    let mut aggregates = vec![
        ServerAggregate::AsheSum {
            column: "m__ashe".to_string(),
        },
        ServerAggregate::CountRows,
    ];
    if let Some(want_max) = extreme {
        aggregates.push(if want_max {
            ServerAggregate::OpeMax {
                column: "o__ope".to_string(),
            }
        } else {
            ServerAggregate::OpeMin {
                column: "o__ope".to_string(),
            }
        });
    }
    TranslatedQuery {
        base_table: "t".to_string(),
        filters: vec![],
        aggregates,
        group_by: group_cols
            .iter()
            .map(|c| GroupByColumn {
                column: c.to_string(),
                physical_column: c.to_string(),
                encrypted: false,
            })
            .collect(),
        group_inflation: inflation,
        client_post: vec![],
        preserve_row_ids: true,
        category: SupportCategory::ServerOnly,
        params: vec![],
    }
}

fn server(table: &Table, mode: ExecMode) -> SeabedServer {
    SeabedServer::new(
        table.clone(),
        Cluster::new(ClusterConfig::with_workers(4).exec_mode(mode)),
    )
}

/// Per-group reference aggregate: wrapping sum, selected row IDs, and the
/// extreme ORE plaintext value (unique winners are not required — only the
/// winning *value* is pinned, which is unambiguous even with ties).
#[derive(Default)]
struct RefGroup {
    sum: u64,
    ids: Vec<u64>,
    extreme: Option<u64>,
}

/// De-inflated view of a server response, merged the way the proxy merges
/// inflated shards.
struct Deflated {
    sum: u64,
    count: u64,
    ids: Vec<u64>,
    /// (ORE plaintext value, companion word) of the best shard winner.
    extreme: Option<(u64, u64)>,
}

fn deflate(
    t: &FuzzTable,
    resp: &ServerResponse,
    strip_suffix: bool,
    want_max: bool,
) -> Result<HashMap<Vec<u64>, Deflated>, String> {
    let mut out: HashMap<Vec<u64>, Deflated> = HashMap::new();
    for group in &resp.groups {
        let mut key = group.key.clone();
        if strip_suffix {
            key.pop();
        }
        let entry = out.entry(key).or_insert(Deflated {
            sum: 0,
            count: 0,
            ids: Vec::new(),
            extreme: None,
        });
        for agg in &group.aggregates {
            match agg {
                EncryptedAggregate::AsheSum {
                    value,
                    id_list,
                    encoding,
                } => {
                    entry.sum = entry.sum.wrapping_add(*value);
                    let ids = IdSet::decode(id_list, *encoding).ok_or("undecodable ID list")?;
                    entry.ids.extend(ids.iter());
                }
                EncryptedAggregate::Count { rows } => entry.count += rows,
                EncryptedAggregate::Extreme { value_word, row_id } => {
                    let Some(id) = row_id else { continue };
                    let row = *id as usize;
                    if row >= t.rows {
                        return Err(format!("extreme winner row {row} out of range"));
                    }
                    // The companion word must be the o__ope_val cell of the
                    // reported winner.
                    if *value_word != t.ope_word(row) {
                        return Err(format!("extreme companion word mismatch at row {row}"));
                    }
                    let v = t.ovals[row];
                    let better = match entry.extreme {
                        None => true,
                        Some((cur, _)) => {
                            if want_max {
                                v > cur
                            } else {
                                v < cur
                            }
                        }
                    };
                    if better {
                        entry.extreme = Some((v, *value_word));
                    }
                }
            }
        }
    }
    for entry in out.values_mut() {
        entry.ids.sort_unstable();
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The main differential property: scalar ≡ vectorized ≡ plaintext
    /// reference over random tables and random queries.
    #[test]
    fn scalar_vectorized_and_reference_agree(
        seed in any::<u64>(),
        rows in 0usize..220,
        partitions in 1usize..8,
        filter_mask in 0u32..16,
        op1 in 0u8..6,
        v1 in 0u64..18,
        spick in 0usize..5,
        dtag in 0u64..10,
        op2 in 0u8..6,
        ov in 0u64..32,
        group_mode in 0u8..3,
        inflation_pick in 0u8..3,
        extreme_on in any::<bool>(),
        want_max in any::<bool>(),
    ) {
        let t = FuzzTable::generate(seed, rows, partitions);

        // Assemble the random conjunctive filter set.
        let mut fuzz_filters: Vec<FuzzFilter> = Vec::new();
        if filter_mask & 1 != 0 {
            fuzz_filters.push(FuzzFilter::PlainU64(op_of(op1), v1));
        }
        if filter_mask & 2 != 0 {
            let s = if spick == 4 { "missing".to_string() } else { TEXTS[spick].to_string() };
            fuzz_filters.push(FuzzFilter::PlainText(s));
        }
        if filter_mask & 4 != 0 {
            fuzz_filters.push(FuzzFilter::DetTag(dtag));
        }
        if filter_mask & 8 != 0 {
            fuzz_filters.push(FuzzFilter::Ope(op_of(op2), ov));
        }
        let filters: Vec<PhysicalFilter> = fuzz_filters.iter().map(|f| f.physical()).collect();

        let group_cols: &[&str] = match group_mode {
            0 => &[],
            1 => &["g"],
            _ => &["g", "h"],
        };
        let inflation = [1u32, 2, 5][inflation_pick as usize];
        let q = query(group_cols, inflation, extreme_on.then_some(want_max));

        // 1. The two execution modes must agree exactly.
        let scalar = server(&t.table, ExecMode::Scalar).execute(&q, &filters);
        let vectorized = server(&t.table, ExecMode::Vectorized).execute(&q, &filters);
        let (scalar, vectorized) = match (scalar, vectorized) {
            (Ok(s), Ok(v)) => (s, v),
            (s, v) => {
                prop_assert!(false, "execution failed: scalar {s:?} vectorized {v:?}");
                unreachable!()
            }
        };
        prop_assert_eq!(&scalar.groups, &vectorized.groups);
        prop_assert_eq!(scalar.result_bytes, vectorized.result_bytes);

        // 2. Plaintext reference evaluation (independent of the engine).
        let selected: Vec<usize> = (0..t.rows)
            .filter(|&row| fuzz_filters.iter().all(|f| reference_matches(&t, row, f)))
            .collect();
        let mut reference: HashMap<Vec<u64>, RefGroup> = HashMap::new();
        for &row in &selected {
            let key: Vec<u64> = match group_mode {
                0 => vec![],
                1 => vec![t.gvals[row]],
                _ => vec![t.gvals[row], t.hvals[row]],
            };
            let entry = reference.entry(key).or_default();
            entry.sum = entry.sum.wrapping_add(t.words[row]);
            entry.ids.push(row as u64);
            let v = t.ovals[row];
            entry.extreme = Some(match entry.extreme {
                None => v,
                Some(cur) => {
                    if want_max {
                        cur.max(v)
                    } else {
                        cur.min(v)
                    }
                }
            });
        }
        if group_mode == 0 {
            // Global aggregation always reports exactly one (possibly empty)
            // group.
            reference.entry(vec![]).or_default();
        }

        // 3. De-inflate the server response and compare.
        let strip = group_mode > 0 && inflation > 1;
        let deflated = match deflate(&t, &scalar, strip, want_max) {
            Ok(d) => d,
            Err(msg) => {
                prop_assert!(false, "{}", msg);
                unreachable!()
            }
        };
        prop_assert_eq!(deflated.len(), reference.len(), "group key sets differ");
        for (key, expected) in &reference {
            let Some(actual) = deflated.get(key) else {
                prop_assert!(false, "server is missing group {key:?}");
                unreachable!()
            };
            prop_assert_eq!(actual.sum, expected.sum, "sum mismatch for group {:?}", key);
            prop_assert_eq!(actual.count, expected.ids.len() as u64, "count mismatch for group {:?}", key);
            prop_assert_eq!(&actual.ids, &expected.ids, "ID set mismatch for group {:?}", key);
            if extreme_on {
                prop_assert_eq!(
                    actual.extreme.map(|(v, _)| v),
                    expected.extreme,
                    "MIN/MAX winner mismatch for group {:?}",
                    key
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both execution modes must reproduce the NoEnc plaintext baseline for
    /// global and group-by sums (selectivity 1.0 — the baseline's filter
    /// model is hash-based row sampling, which has no PhysicalFilter form).
    #[test]
    fn server_matches_noenc_baseline(
        seed in any::<u64>(),
        rows in 1usize..400,
        partitions in 1usize..8,
        groups in 1u64..12,
    ) {
        let values: Vec<u64> = (0..rows as u64).map(|i| mix(seed, i, 1) % 1_000_000).collect();
        let keys: Vec<u64> = (0..rows as u64).map(|i| mix(seed, i, 2) % groups).collect();
        let noenc = NoEncSystem::new(&values, Some(&keys), partitions, Cluster::new(ClusterConfig::with_workers(4)));
        let expected_sum = noenc.sum(1.0);
        let (expected_groups, _) = noenc.group_by_sum(1.0);

        let table = Table::from_columns(
            Schema::new([
                ("m__ashe".to_string(), ColumnType::UInt64),
                ("g".to_string(), ColumnType::UInt64),
            ]),
            vec![ColumnData::UInt64(values.clone()), ColumnData::UInt64(keys.clone())],
            partitions,
        );
        for mode in [ExecMode::Scalar, ExecMode::Vectorized] {
            let s = server(&table, mode);
            // Global sum.
            let q = TranslatedQuery {
                base_table: "t".to_string(),
                filters: vec![],
                aggregates: vec![
                    ServerAggregate::AsheSum { column: "m__ashe".to_string() },
                    ServerAggregate::CountRows,
                ],
                group_by: vec![],
                group_inflation: 1,
                client_post: vec![],
                preserve_row_ids: true,
                category: SupportCategory::ServerOnly,
                params: vec![],
            };
            let resp = match s.execute(&q, &[]) {
                Ok(r) => r,
                Err(e) => { prop_assert!(false, "{mode:?}: {e}"); unreachable!() }
            };
            prop_assert!(matches!(
                &resp.groups[0].aggregates[0],
                EncryptedAggregate::AsheSum { value, .. } if *value == expected_sum.sum
            ), "{:?}: global sum diverges from NoEnc", mode);
            prop_assert!(matches!(
                &resp.groups[0].aggregates[1],
                EncryptedAggregate::Count { rows } if *rows == expected_sum.rows
            ), "{:?}: global count diverges from NoEnc", mode);

            // Group-by sum.
            let mut q = q.clone();
            q.group_by = vec![GroupByColumn {
                column: "g".to_string(),
                physical_column: "g".to_string(),
                encrypted: false,
            }];
            let resp = match s.execute(&q, &[]) {
                Ok(r) => r,
                Err(e) => { prop_assert!(false, "{mode:?}: {e}"); unreachable!() }
            };
            prop_assert_eq!(resp.groups.len(), expected_groups.len());
            for group in &resp.groups {
                let expected = expected_groups.get(&group.key[0]).copied();
                prop_assert!(matches!(
                    &group.aggregates[0],
                    EncryptedAggregate::AsheSum { value, .. } if Some(*value) == expected
                ), "{:?}: group {} diverges from NoEnc", mode, group.key[0]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Full-pipeline differential: SQL in, plaintext out, real encryption between.
// ---------------------------------------------------------------------------

const COUNTRIES: [&str; 4] = ["USA", "Canada", "India", "Chile"];
const DEPTS: [&str; 3] = ["eng", "ops", "sales"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end: both execution modes, behind real ASHE/SPLASHE/DET/ORE
    /// encryption, must decrypt to the plaintext evaluation of the SQL.
    #[test]
    fn full_pipeline_modes_match_plaintext(
        seed in any::<u64>(),
        rows in 5usize..48,
        partitions in 1usize..5,
        kind in 0u8..4,
        where_pick in 0u8..4,
        k in 1u64..12,
        cpick in 0usize..4,
    ) {
        let country: Vec<String> = (0..rows as u64)
            .map(|i| COUNTRIES[(mix(seed, i, 1) % 4) as usize].to_string())
            .collect();
        let dept: Vec<String> = (0..rows as u64)
            .map(|i| DEPTS[(mix(seed, i, 2) % 3) as usize].to_string())
            .collect();
        let revenue: Vec<u64> = (0..rows as u64).map(|i| mix(seed, i, 3) % 10_000).collect();
        let ts: Vec<u64> = (0..rows as u64).map(|i| mix(seed, i, 4) % 12 + 1).collect();
        let dataset = PlainDataset::new("sales")
            .with_text_column("country", country.clone())
            .with_uint_column("revenue", revenue.clone())
            .with_uint_column("ts", ts.clone())
            .with_text_column("dept", dept.clone());

        let distribution = dataset.distribution("country").expect("country column exists");
        let columns = vec![
            ColumnSpec::sensitive_with_distribution("country", distribution),
            ColumnSpec::sensitive("revenue"),
            ColumnSpec::sensitive("ts"),
            ColumnSpec::sensitive("dept"),
        ];
        let samples: Vec<_> = [
            "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
            "SELECT SUM(revenue) FROM sales WHERE ts >= 3",
            "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
            "SELECT AVG(revenue) FROM sales",
        ]
        .iter()
        .map(|s| parse(s).expect("sample parses"))
        .collect();
        let mut client = SeabedClient::create_plan(b"diff", &columns, &samples, &PlannerConfig::default());
        let encrypted = client.encrypt_dataset(&dataset, partitions, &mut rand::rng());

        // GROUP BY queries take no WHERE in this family; the others draw one
        // of {none, ts >= k, ts < k, country = c}.
        let where_clause = if kind == 3 {
            String::new()
        } else {
            match where_pick {
                0 => String::new(),
                1 => format!(" WHERE ts >= {k}"),
                2 => format!(" WHERE ts < {k}"),
                _ => format!(" WHERE country = '{}'", COUNTRIES[cpick]),
            }
        };
        let sql = match kind {
            0 => format!("SELECT SUM(revenue) FROM sales{where_clause}"),
            1 => format!("SELECT COUNT(*) FROM sales{where_clause}"),
            2 => format!("SELECT AVG(revenue) FROM sales{where_clause}"),
            _ => "SELECT dept, SUM(revenue) FROM sales GROUP BY dept".to_string(),
        };

        // Plaintext evaluation.
        let selected: Vec<usize> = (0..rows)
            .filter(|&i| {
                if kind == 3 {
                    return true;
                }
                match where_pick {
                    0 => true,
                    1 => ts[i] >= k,
                    2 => ts[i] < k,
                    _ => country[i] == COUNTRIES[cpick],
                }
            })
            .collect();

        for mode in [ExecMode::Scalar, ExecMode::Vectorized] {
            let srv = SeabedServer::new(
                encrypted.table.clone(),
                Cluster::new(ClusterConfig::with_workers(4).exec_mode(mode)),
            );
            let result = match client.query(&srv, &sql) {
                Ok(r) => r,
                Err(e) => {
                    prop_assert!(false, "{mode:?}: query '{sql}' failed: {e}");
                    unreachable!()
                }
            };
            match kind {
                0 => {
                    let expected: u64 = selected.iter().map(|&i| revenue[i]).sum();
                    prop_assert_eq!(&result.rows, &vec![vec![ResultValue::UInt(expected)]], "{:?}: {}", mode, sql);
                }
                1 => {
                    prop_assert_eq!(
                        &result.rows,
                        &vec![vec![ResultValue::UInt(selected.len() as u64)]],
                        "{:?}: {}", mode, sql
                    );
                }
                2 => {
                    let sum: u64 = selected.iter().map(|&i| revenue[i]).sum();
                    let expected = if selected.is_empty() { 0.0 } else { sum as f64 / selected.len() as f64 };
                    prop_assert_eq!(result.rows.len(), 1);
                    let ResultValue::Float(actual) = result.rows[0][0] else {
                        prop_assert!(false, "{mode:?}: AVG returned {:?}", result.rows[0][0]);
                        unreachable!()
                    };
                    prop_assert!((actual - expected).abs() < 1e-9, "{mode:?}: AVG {actual} != {expected}");
                }
                _ => {
                    let mut expected: HashMap<&str, u64> = HashMap::new();
                    for i in 0..rows {
                        *expected.entry(dept[i].as_str()).or_insert(0) += revenue[i];
                    }
                    prop_assert_eq!(result.rows.len(), expected.len(), "{:?}: group count", mode);
                    for row in &result.rows {
                        let ResultValue::Text(key) = &row[0] else {
                            prop_assert!(false, "{mode:?}: group key not decrypted: {row:?}");
                            unreachable!()
                        };
                        prop_assert_eq!(
                            row[1].as_u64(),
                            expected.get(key.as_str()).copied(),
                            "{:?}: group {} sum", mode, key
                        );
                    }
                }
            }
        }
    }
}
