//! Differential property tests pinning every batched crypto kernel to its
//! scalar reference path.
//!
//! The batched hot paths (multi-block AES dispatch, PRF keystream runs, the
//! packed ASHE mask runs, run-encryption, the batched ORE prefix encryption,
//! and the fixed-width bigint accumulators) exist purely for throughput:
//! each must be *bit-identical* to the scalar path it replaces, over random
//! key material, random values, random identifiers — including identifier
//! runs that wrap `u64::MAX`, empty batches, and single-element batches.
//! The scalar paths stay in the tree as the differential reference, and this
//! file is the contract that keeps them honest.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use seabed_ashe::{encrypt_column, encrypt_column_scalar, AsheScheme};
use seabed_crypto::prf::{AesPrf, AnyPrf, Prf, PrfKind};
use seabed_crypto::{Aes128, Aes256, AesCtr, BigUint, FixedUint, OreScheme};

/// Maps a raw draw onto a batch length, biased to the internal chunk
/// boundaries (the AES kernel processes 4 lanes per dispatch, the PRF run
/// evaluators 32 blocks, the packed mask runs 64 identifiers): empty,
/// singleton, odd, and just past each boundary — plus arbitrary lengths.
fn batch_len(raw: u64) -> usize {
    const BOUNDARIES: [usize; 12] = [0, 1, 2, 3, 5, 31, 32, 33, 63, 64, 65, 129];
    if raw & 1 == 0 {
        BOUNDARIES[(raw >> 1) as usize % BOUNDARIES.len()]
    } else {
        ((raw >> 1) % 160) as usize
    }
}

/// Maps a raw draw onto a run start: anywhere, or so close to `u64::MAX`
/// that the run wraps (the packed two-ids-per-block layout splits those
/// into segments).
fn start_id(raw: u64) -> u64 {
    if raw & 1 == 0 {
        raw
    } else {
        u64::MAX - ((raw >> 1) % 256)
    }
}

/// Maps a raw draw onto a PRF / ASHE group modulus: 0 (the free `2^64`
/// wrap-around group) a quarter of the time, otherwise arbitrary non-zero.
fn pick_modulus(raw: u64) -> u64 {
    match raw & 3 {
        0 => 0,
        _ => (raw >> 2).max(1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------------------------------------------------------
    // AES: the multi-block kernel is the single-block cipher, N times.
    // ---------------------------------------------------------------

    #[test]
    fn aes128_encrypt_blocks_matches_per_block(key in any::<[u8; 16]>(), blocks in pvec(any::<[u8; 16]>(), 0..70)) {
        let aes = Aes128::new(&key);
        let mut batched = blocks.clone();
        aes.encrypt_blocks(&mut batched);
        let scalar: Vec<[u8; 16]> = blocks.iter().map(|b| aes.encrypt_block(b)).collect();
        prop_assert_eq!(batched, scalar);
    }

    #[test]
    fn aes256_encrypt_blocks_matches_per_block(key in any::<[u8; 32]>(), blocks in pvec(any::<[u8; 16]>(), 0..70)) {
        let aes = Aes256::new(&key);
        let mut batched = blocks.clone();
        aes.encrypt_blocks(&mut batched);
        let scalar: Vec<[u8; 16]> = blocks.iter().map(|b| aes.encrypt_block(b)).collect();
        prop_assert_eq!(batched, scalar);
    }

    #[test]
    fn aes_ctr_keystream_run_matches_per_counter(
        key in any::<[u8; 16]>(),
        nonce in any::<u64>(),
        raw_start in any::<u64>(),
        raw_len in any::<u64>(),
    ) {
        let ctr = AesCtr::new(&key, nonce);
        let counter = start_id(raw_start);
        let mut run = vec![[0u8; 16]; batch_len(raw_len)];
        ctr.keystream_blocks(counter, &mut run);
        for (i, block) in run.iter().enumerate() {
            let words = ctr.keystream_u64x2(counter.wrapping_add(i as u64));
            prop_assert_eq!(u64::from_be_bytes(block[..8].try_into().unwrap()), words[0]);
            prop_assert_eq!(u64::from_be_bytes(block[8..].try_into().unwrap()), words[1]);
        }
    }

    // ---------------------------------------------------------------
    // PRF: eval_run / eval_wide_run ≡ eval / eval_wide per identifier.
    // ---------------------------------------------------------------

    #[test]
    fn aes_prf_eval_run_matches_eval(
        key in any::<[u8; 16]>(),
        raw_start in any::<u64>(),
        raw_len in any::<u64>(),
        raw_mod in any::<u64>(),
    ) {
        let prf = AesPrf::new(&key);
        let (start, modulus) = (start_id(raw_start), pick_modulus(raw_mod));
        let mut run = vec![0u64; batch_len(raw_len)];
        prf.eval_run(start, modulus, &mut run);
        for (i, &value) in run.iter().enumerate() {
            prop_assert_eq!(value, prf.eval(start.wrapping_add(i as u64), modulus));
        }
    }

    #[test]
    fn aes_prf_eval_wide_run_matches_eval_wide(
        key in any::<[u8; 16]>(),
        raw_start in any::<u64>(),
        raw_len in any::<u64>(),
    ) {
        let prf = AesPrf::new(&key);
        let start = start_id(raw_start);
        let mut run = vec![[0u64; 2]; batch_len(raw_len)];
        prf.eval_wide_run(start, &mut run);
        for (i, &pair) in run.iter().enumerate() {
            prop_assert_eq!(pair, prf.eval_wide(start.wrapping_add(i as u64)));
        }
    }

    /// The `AnyPrf` dispatch must route runs to the batched kernel (AES) or
    /// the default per-id loop (hash) without changing a single output.
    #[test]
    fn any_prf_eval_run_matches_eval(
        key in any::<[u8; 16]>(),
        aes in any::<bool>(),
        raw_start in any::<u64>(),
        raw_len in any::<u64>(),
        raw_mod in any::<u64>(),
    ) {
        let prf = AnyPrf::new(if aes { PrfKind::Aes } else { PrfKind::Hash }, &key);
        let (start, modulus) = (start_id(raw_start), pick_modulus(raw_mod));
        let mut run = vec![0u64; batch_len(raw_len)];
        prf.eval_run(start, modulus, &mut run);
        for (i, &value) in run.iter().enumerate() {
            prop_assert_eq!(value, prf.eval(start.wrapping_add(i as u64), modulus));
        }
    }

    // ---------------------------------------------------------------
    // ASHE: packed mask runs and run-encryption ≡ the scalar scheme.
    // ---------------------------------------------------------------

    #[test]
    fn ashe_mask_run_matches_mask(
        key in any::<[u8; 16]>(),
        aes in any::<bool>(),
        raw_start in any::<u64>(),
        raw_len in any::<u64>(),
        raw_mod in any::<u64>(),
    ) {
        let kind = if aes { PrfKind::Aes } else { PrfKind::Hash };
        let scheme = AsheScheme::with_options(&key, kind, pick_modulus(raw_mod));
        let start = start_id(raw_start);
        let mut run = vec![0u64; batch_len(raw_len)];
        scheme.mask_run(start, &mut run);
        for (i, &value) in run.iter().enumerate() {
            prop_assert_eq!(
                value,
                scheme.mask(start.wrapping_add(i as u64)),
                "mask diverged at offset {} of a run starting at {}",
                i,
                start
            );
        }
    }

    #[test]
    fn ashe_encrypt_run_matches_encrypt(
        key in any::<[u8; 16]>(),
        aes in any::<bool>(),
        raw_start in any::<u64>(),
        values in pvec(any::<u64>(), 0..130),
        raw_mod in any::<u64>(),
    ) {
        let kind = if aes { PrfKind::Aes } else { PrfKind::Hash };
        let scheme = AsheScheme::with_options(&key, kind, pick_modulus(raw_mod));
        let start = start_id(raw_start);
        let run = scheme.encrypt_run(&values, start);
        prop_assert_eq!(run.len(), values.len());
        for (i, ciphertext) in run.iter().enumerate() {
            let scalar = scheme.encrypt(values[i], start.wrapping_add(i as u64));
            prop_assert_eq!(ciphertext.value, scalar.value);
            prop_assert_eq!(&ciphertext.ids, &scalar.ids);
        }
    }

    /// The column front door: batched `encrypt_column` ≡ the retained scalar
    /// reference, and both telescope back to the plaintext.
    #[test]
    fn ashe_encrypt_column_matches_scalar_and_roundtrips(
        key in any::<[u8; 16]>(),
        start in any::<u64>(),
        values in pvec(any::<u64>(), 0..100),
    ) {
        let scheme = AsheScheme::new(&key);
        let batched = encrypt_column(&scheme, &values, start);
        let scalar = encrypt_column_scalar(&scheme, &values, start);
        prop_assert_eq!(batched.len(), values.len());
        for (i, &value) in values.iter().enumerate() {
            let b = batched.ciphertext_at(i);
            let s = scalar.ciphertext_at(i);
            prop_assert_eq!(b.value, s.value);
            prop_assert_eq!(&b.ids, &s.ids);
            prop_assert_eq!(scheme.decrypt(&b), value);
        }
    }

    // ---------------------------------------------------------------
    // ORE: the batched prefix encryption ≡ the scalar per-bit walk.
    // ---------------------------------------------------------------

    #[test]
    fn ore_encrypt_matches_scalar(key in any::<[u8; 16]>(), values in pvec(any::<u64>(), 1..24)) {
        let ore = OreScheme::new(&key);
        for &m in &values {
            prop_assert_eq!(ore.encrypt(m).symbols, ore.encrypt_scalar(m).symbols);
        }
        // Order must survive the batched path end-to-end.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            prop_assert_eq!(ore.encrypt(pair[0]).compare(&ore.encrypt(pair[1])), pair[0].cmp(&pair[1]));
        }
    }

    // ---------------------------------------------------------------
    // FixedUint: the allocation-free accumulator ≡ BigUint, wrapping at
    // 2^(64 * LIMBS).
    // ---------------------------------------------------------------

    #[test]
    fn fixed_uint_arithmetic_matches_biguint(a in any::<u128>(), b in any::<u128>(), raw_m in any::<u64>()) {
        let m = raw_m.max(1);
        let width = BigUint::one().shl(128); // 2^(64 * LIMBS) for LIMBS = 2
        let fa = FixedUint::<2>::from_u128(a);
        let fb = FixedUint::<2>::from_u128(b);
        let ba = BigUint::from_u128(a);
        let bb = BigUint::from_u128(b);

        let mut sum = fa;
        sum.add_assign(&fb);
        prop_assert_eq!(sum.to_biguint(), ba.add(&bb).rem(&width));

        let mut diff = fa;
        diff.sub_assign(&fb);
        prop_assert_eq!(diff.to_biguint(), ba.add(&width).sub(&bb).rem(&width));

        let mut scaled = fa;
        scaled.mul_u64(m);
        prop_assert_eq!(scaled.to_biguint(), ba.mul(&BigUint::from_u64(m)).rem(&width));

        prop_assert_eq!(fa.rem_u64(m), ba.rem(&BigUint::from_u64(m)).to_u64_truncated());
        prop_assert_eq!(fa.to_u128_truncated(), a);
    }
}

/// The exact batch sizes a prepared-statement bind produces (a handful of
/// literals) must go through the same code the proptests exercised — pin the
/// tiny sizes explicitly so a future fast path for them cannot drift.
#[test]
fn tiny_bind_batches_are_pinned() {
    let scheme = AsheScheme::new(&[7u8; 16]);
    for n in 0..5u64 {
        let values: Vec<u64> = (0..n).map(|v| v * 1_000_003).collect();
        let run = scheme.encrypt_run(&values, 40);
        assert_eq!(run.len(), values.len());
        for (i, c) in run.iter().enumerate() {
            assert_eq!(c.value, scheme.encrypt(values[i], 40 + i as u64).value);
        }
    }
    let prf = AesPrf::new(&[3u8; 16]);
    let mut out = [0u64; 1];
    prf.eval_run(u64::MAX, 0, &mut out);
    assert_eq!(out[0], prf.eval(u64::MAX, 0));
}
