//! Property tests for the partial-aggregate merge algebra
//! (`seabed_engine::merge`): associativity, commutativity and
//! order-invariance — first on the bare algebra, then through the real
//! pipeline (ASHE words, SPLASHE splayed counts, DET tags, ORE candidates):
//! any random split of a table's partitions, executed as separate partials
//! and merged in any order, must finalize byte-identically to single-pass
//! execution. This is the property that makes the `seabed-dist` coordinator
//! safe: shard gather order, straggler arrival order and re-dispatch can
//! never change a result.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seabed_ashe::IdSet;
use seabed_core::{finalize_partials, PlainDataset, SeabedClient, SeabedServer};
use seabed_crypto::OreScheme;
use seabed_engine::merge::{merge_partial_groups, ExtremeCandidate, PartialAggregate, PartialGroups};
use seabed_engine::{Cluster, ClusterConfig, ExecStats, Table};
use seabed_query::{parse, ColumnSpec, PlannerConfig, Query};

/// SplitMix-style mixer for deterministic pseudo-random test data.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.wrapping_mul(0x9e3779b97f4a7c15) ^ b.wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Builds `n` random Sum partials over disjoint ID ranges.
fn random_sums(seed: u64, n: usize) -> Vec<PartialAggregate> {
    let mut out = Vec::with_capacity(n);
    let mut next_id = 0u64;
    for i in 0..n as u64 {
        let span = mix(seed, i, 1) % 50;
        let ids = if span == 0 {
            IdSet::new()
        } else {
            IdSet::range(next_id, next_id + span - 1)
        };
        next_id += span + (mix(seed, i, 2) % 3);
        out.push(PartialAggregate::Sum {
            value: mix(seed, i, 3),
            ids,
        });
    }
    out
}

/// Folds partials left-to-right in the given order.
fn fold(parts: &[PartialAggregate], order: &[usize], empty: PartialAggregate) -> PartialAggregate {
    let mut acc = empty;
    for &i in order {
        acc.merge(parts[i].clone());
    }
    acc
}

/// A random permutation of `0..n` derived from `seed`.
fn permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        order.swap(i, rng.random_range(0..(i as u64 + 1)) as usize);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sum partials: any permutation folds to the same state, and any
    /// bracketing (fold a random prefix first, then the rest) agrees —
    /// associativity + commutativity on real wrapping sums and ID unions.
    #[test]
    fn sum_merge_is_permutation_and_bracketing_invariant(
        seed in any::<u64>(),
        n in 1usize..12,
        split in 0usize..12,
    ) {
        let parts = random_sums(seed, n);
        let empty = PartialAggregate::Sum { value: 0, ids: IdSet::new() };
        let identity: Vec<usize> = (0..n).collect();
        let reference = fold(&parts, &identity, empty.clone());

        // Permutation invariance.
        let order = permutation(seed ^ 0xabcd, n);
        prop_assert_eq!(fold(&parts, &order, empty.clone()), reference.clone());

        // Bracketing invariance: (prefix fold) merge (suffix fold).
        let split = split.min(n);
        let mut left = fold(&parts, &identity[..split], empty.clone());
        let right = fold(&parts, &identity[split..], empty);
        left.merge(right);
        prop_assert_eq!(left, reference);
    }

    /// MIN/MAX candidates through the real ORE scheme: the winner is the
    /// true extremum no matter the merge order.
    #[test]
    fn extreme_merge_picks_the_true_extremum_in_any_order(
        seed in any::<u64>(),
        n in 1usize..10,
        want_max in any::<bool>(),
    ) {
        let ore = OreScheme::new(&[7u8; 16]);
        let plains: Vec<u64> = (0..n as u64).map(|i| mix(seed, i, 9) % 10_000).collect();
        let parts: Vec<PartialAggregate> = plains
            .iter()
            .enumerate()
            .map(|(i, &v)| PartialAggregate::Extreme {
                best: Some(ExtremeCandidate {
                    ciphertext: ore.encrypt(v),
                    value_word: v,
                    row_id: i as u64,
                }),
                want_max,
            })
            .collect();
        let winner = if want_max {
            *plains.iter().max().expect("non-empty")
        } else {
            *plains.iter().min().expect("non-empty")
        };
        let empty = PartialAggregate::Extreme { best: None, want_max };
        for variant in 0..3u64 {
            let order = permutation(seed ^ variant, n);
            let folded = fold(&parts, &order, empty.clone());
            prop_assert!(matches!(
                &folded,
                PartialAggregate::Extreme { best: Some(c), .. } if c.value_word == winner
            ), "order {order:?} picked a non-extremum: {folded:?}");
        }
    }

    /// Group maps: merging per-group maps in any order yields the same map.
    #[test]
    fn group_map_merge_is_order_invariant(
        seed in any::<u64>(),
        maps in 1usize..6,
        keys in 1u64..5,
    ) {
        let sources: Vec<PartialGroups> = (0..maps as u64)
            .map(|m| {
                let mut g = PartialGroups::new();
                for k in 0..keys {
                    if mix(seed, m, k).is_multiple_of(3) {
                        continue; // not every map carries every key
                    }
                    g.insert(
                        vec![k],
                        vec![PartialAggregate::Sum {
                            value: mix(seed, m, k + 100),
                            ids: IdSet::range(m * 1_000 + k * 10, m * 1_000 + k * 10 + 3),
                        }],
                    );
                }
                g
            })
            .collect();
        let fold_in = |order: &[usize]| {
            let mut merged = PartialGroups::new();
            for &i in order {
                merge_partial_groups(&mut merged, sources[i].clone());
            }
            merged
        };
        let identity: Vec<usize> = (0..maps).collect();
        let reference = fold_in(&identity);
        let shuffled = permutation(seed ^ 0x55, maps);
        prop_assert_eq!(fold_in(&shuffled), reference);
    }
}

// ---------------------------------------------------------------------------
// Through the real pipeline: random partition splits ≡ single pass.
// ---------------------------------------------------------------------------

const COUNTRIES: [&str; 4] = ["USA", "Canada", "India", "Chile"];

/// Splits a table's partitions into contiguous sub-tables at random cut
/// points, mimicking an arbitrary shard layout.
fn random_split(table: &Table, seed: u64) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut splits: Vec<Table> = Vec::new();
    let mut current: Vec<seabed_engine::Partition> = Vec::new();
    for partition in table.partitions.clone() {
        current.push(partition);
        if rng.random_range(0..3u64) == 0 {
            splits.push(Table {
                schema: table.schema.clone(),
                partitions: std::mem::take(&mut current),
            });
        }
    }
    if !current.is_empty() {
        splits.push(Table {
            schema: table.schema.clone(),
            partitions: current,
        });
    }
    splits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full property behind the coordinator: a table encrypted with real
    /// ASHE/SPLASHE/DET/ORE, split at random partition boundaries, executed
    /// split-by-split via `execute_partial`, merged in a random order and
    /// finalized, is byte-identical to single-pass execution — encrypted
    /// groups, ID lists and result bytes — and decrypts to the same rows.
    #[test]
    fn random_partition_splits_finalize_identically(
        seed in any::<u64>(),
        rows in 8usize..64,
        partitions in 2usize..7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dataset = PlainDataset::new("sales")
            .with_text_column(
                "country",
                (0..rows).map(|i| COUNTRIES[mix(seed, i as u64, 1) as usize % COUNTRIES.len()].to_string()).collect(),
            )
            .with_uint_column("revenue", (0..rows as u64).map(|i| mix(seed, i, 2) % 1_000).collect())
            .with_uint_column("ts", (0..rows as u64).map(|i| mix(seed, i, 3) % 500).collect())
            .with_text_column("dept", (0..rows).map(|i| format!("d{}", mix(seed, i as u64, 4) % 3)).collect());
        let columns = vec![
            ColumnSpec::sensitive_with_distribution("country", dataset.distribution("country").expect("country")),
            ColumnSpec::sensitive("revenue"),
            ColumnSpec::sensitive("ts"),
            ColumnSpec::sensitive("dept"),
        ];
        let samples: Vec<Query> = [
            "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
            "SELECT SUM(revenue) FROM sales WHERE ts >= 100",
            "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
            "SELECT MIN(ts) FROM sales",
        ]
        .iter()
        .map(|sql| parse(sql).expect("sample"))
        .collect();
        let mut client = SeabedClient::create_plan(b"merge-prop", &columns, &samples, &PlannerConfig::default());
        let encrypted = client.encrypt_dataset(&dataset, partitions, &mut rng);

        let full_server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(4)));
        let splits = random_split(&encrypted.table, seed ^ 0x77);

        for sql in [
            "SELECT SUM(revenue) FROM sales",
            "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
            "SELECT SUM(revenue) FROM sales WHERE ts >= 100",
            "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
            "SELECT MIN(ts) FROM sales",
            "SELECT MAX(ts) FROM sales",
        ] {
            let (query, translated, filters) = match client.prepare(&full_server, sql) {
                Ok(p) => p,
                Err(e) => { prop_assert!(false, "prepare {sql}: {e}"); unreachable!() }
            };
            let single = match full_server.execute(&translated, &filters) {
                Ok(r) => r,
                Err(e) => { prop_assert!(false, "single-pass {sql}: {e}"); unreachable!() }
            };

            // Execute each split separately, then merge in a random order.
            let mut partials = Vec::new();
            for split in &splits {
                let split_server = SeabedServer::new(split.clone(), Cluster::new(ClusterConfig::with_workers(2)));
                match split_server.execute_partial(&translated, &filters) {
                    Ok(p) => partials.push(p),
                    Err(e) => { prop_assert!(false, "split {sql}: {e}"); unreachable!() }
                }
            }
            let order = permutation(seed ^ 0x99, partials.len());
            let mut merged = PartialGroups::new();
            for &i in &order {
                merge_partial_groups(&mut merged, partials[i].groups.clone());
            }
            let reassembled = finalize_partials(&translated, merged, ExecStats::default());
            prop_assert_eq!(&single.groups, &reassembled.groups, "encrypted groups diverged for {}", sql);
            prop_assert_eq!(single.result_bytes, reassembled.result_bytes, "result bytes diverged for {}", sql);

            // And the decrypted answers agree (exact de-inflated ID sets are
            // implied: ASHE decryption fails loudly on a wrong ID set).
            let a = match client.decrypt_response(&query, &translated, single) {
                Ok(r) => r.rows,
                Err(e) => { prop_assert!(false, "decrypt single {sql}: {e}"); unreachable!() }
            };
            let b = match client.decrypt_response(&query, &translated, reassembled) {
                Ok(r) => r.rows,
                Err(e) => { prop_assert!(false, "decrypt merged {sql}: {e}"); unreachable!() }
            };
            prop_assert_eq!(a, b, "decrypted rows diverged for {}", sql);
        }
    }
}
