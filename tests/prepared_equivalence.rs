//! Prepared ≡ one-shot equivalence, across all three execution targets.
//!
//! Every query here runs twice per target: once through the legacy one-shot
//! path (`SeabedClient::prepare` + execute — parse/translate/encrypt per
//! call, literals inline in the SQL) and once through a [`SeabedSession`]
//! prepared statement with the literals bound as `?` parameters at execute
//! time. The *encrypted* responses must be byte-identical — group keys, ASHE
//! sums, exact encoded ID lists, result-byte accounting — and the decrypted
//! rows must match, on the sales fixture, the Ad-Analytics workload and the
//! BDB tables, against an in-process `SeabedServer`, a
//! `RemoteSeabedClient`/`NetServer` pair (where prepared executions ship
//! only the statement handle plus bound filters), and a `DistCoordinator`
//! over real workers. Group-by inflation is exercised explicitly.

use seabed_core::{Catalog, PlainDataset, SeabedClient, SeabedServer, SeabedSession, ServerResponse};
use seabed_dist::{spawn_worker, DistConfig, DistCoordinator};
use seabed_engine::{Cluster, ClusterConfig};
use seabed_net::{NetServer, RemoteSeabedClient, ServiceConfig};
use seabed_query::{parse, ColumnSpec, Literal, PlannerConfig, Query};
use seabed_workloads::{ad_analytics, bdb};

/// One equivalence case: a parameterized statement, its bindings, and the
/// equivalent inline SQL.
struct Case {
    parameterized: &'static str,
    params: Vec<Literal>,
    inline: String,
}

fn case(parameterized: &'static str, params: Vec<Literal>, inline: impl Into<String>) -> Case {
    Case {
        parameterized,
        params,
        inline: inline.into(),
    }
}

/// Asserts that session-prepared execution and one-shot execution produce
/// byte-identical encrypted payloads and identical decrypted rows on `target`.
fn assert_case(table: &str, client: &SeabedClient, target: &impl seabed_core::QueryTarget, case: &Case, label: &str) {
    let session = SeabedSession::single(table, client.clone(), target);
    let prepared = session
        .prepare(case.parameterized)
        .unwrap_or_else(|e| panic!("{label}: prepare {}: {e}", case.parameterized));
    let (bound, prepared_response) = session
        .execute_encrypted(&prepared, &case.params)
        .unwrap_or_else(|e| panic!("{label}: execute {}: {e}", case.parameterized));

    let (query, translated, filters) = client
        .prepare(target, &case.inline)
        .unwrap_or_else(|e| panic!("{label}: one-shot prepare {}: {e}", case.inline));
    let one_shot: ServerResponse = target
        .execute_query(&translated, &filters)
        .unwrap_or_else(|e| panic!("{label}: one-shot execute {}: {e}", case.inline));

    // Byte-identical encrypted payload (stats carry measured wall times and
    // may differ).
    assert_eq!(
        prepared_response.groups, one_shot.groups,
        "{label}: encrypted groups diverged for {}",
        case.parameterized
    );
    assert_eq!(
        prepared_response.result_bytes, one_shot.result_bytes,
        "{label}: result bytes diverged for {}",
        case.parameterized
    );

    // The bound plan decrypts to the same rows the one-shot plan does.
    let prepared_rows = client
        .decrypt_response(prepared.query(), &bound, prepared_response)
        .unwrap_or_else(|e| panic!("{label}: decrypt prepared: {e}"))
        .rows;
    let one_shot_rows = client
        .decrypt_response(&query, &translated, one_shot)
        .unwrap_or_else(|e| panic!("{label}: decrypt one-shot: {e}"))
        .rows;
    assert_eq!(
        prepared_rows, one_shot_rows,
        "{label}: decrypted rows diverged for {}",
        case.parameterized
    );

    // Re-executing the same prepared statement again is stable.
    let (_, again) = session
        .execute_encrypted(&prepared, &case.params)
        .unwrap_or_else(|e| panic!("{label}: re-execute: {e}"));
    assert_eq!(
        again.groups,
        session.execute_encrypted(&prepared, &case.params).unwrap().1.groups
    );
}

/// Runs every case against the three targets built over `server`'s table.
fn assert_cases_across_targets(table: &str, client: &SeabedClient, server: &SeabedServer, cases: &[Case]) {
    // Target 1: in-process SeabedServer.
    for case in cases {
        assert_case(table, client, server, case, "in-process");
    }

    // Target 2: RemoteSeabedClient over a NetServer (prepared executions go
    // out as statement handles + bound filters).
    let net = NetServer::serve(
        SeabedServer::new(server.table().clone(), Cluster::new(ClusterConfig::with_workers(4))),
        "127.0.0.1:0",
        ServiceConfig::default(),
    )
    .expect("net server must start");
    let remote = RemoteSeabedClient::connect(net.local_addr(), client.clone()).expect("remote client must connect");
    for case in cases {
        assert_case(table, client, &remote, case, "remote");
    }
    let stats = net.shutdown();
    assert!(
        stats.statements_prepared > 0,
        "prepared executions must register statements on the wire"
    );

    // Target 3: DistCoordinator over two real workers.
    let workers: Vec<NetServer> = (0..2)
        .map(|_| spawn_worker("127.0.0.1:0", ServiceConfig::default()).expect("worker must start"))
        .collect();
    let addrs: Vec<_> = workers.iter().map(|w| w.local_addr()).collect();
    let coordinator =
        DistCoordinator::connect(&addrs, server.table().clone(), DistConfig::default()).expect("coordinator");
    for case in cases {
        assert_case(table, client, &coordinator, case, "dist");
    }
    drop(coordinator);
    for w in workers {
        w.shutdown();
    }
}

fn sales_fixture() -> (SeabedClient, SeabedServer, PlainDataset) {
    let n = 2_400usize;
    let dataset = PlainDataset::new("sales")
        .with_text_column("dept", (0..n).map(|i| format!("d{}", i % 5)).collect())
        .with_uint_column("revenue", (0..n as u64).map(|i| (i * 13) % 500).collect())
        .with_uint_column("ts", (0..n as u64).map(|i| (i * 7919) % 10_000).collect());
    let columns = vec![
        ColumnSpec::sensitive("dept"),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("ts"),
    ];
    let samples: Vec<Query> = [
        "SELECT SUM(revenue) FROM sales WHERE dept = 'd1'",
        "SELECT SUM(revenue) FROM sales WHERE ts >= 3",
        "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
        "SELECT MIN(ts) FROM sales",
        "SELECT AVG(revenue) FROM sales",
    ]
    .iter()
    .map(|sql| parse(sql).expect("sample"))
    .collect();
    let mut client = SeabedClient::create_plan(b"prep-eq", &columns, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 8, &mut rand::rng());
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
    (client, server, dataset)
}

#[test]
fn sales_fixture_prepared_equals_one_shot_on_all_targets() {
    let (client, server, _) = sales_fixture();
    let cases = vec![
        case(
            "SELECT SUM(revenue) FROM sales WHERE dept = ? AND ts >= ?",
            vec![Literal::Text("d2".to_string()), Literal::Integer(4_000)],
            "SELECT SUM(revenue) FROM sales WHERE dept = 'd2' AND ts >= 4000",
        ),
        case(
            "SELECT COUNT(*) FROM sales WHERE ts < ?",
            vec![Literal::Integer(2_500)],
            "SELECT COUNT(*) FROM sales WHERE ts < 2500",
        ),
        // Mixed inline + placeholder: the inline DET literal is encrypted
        // once at prepare (filter template), only the OPE literal per
        // execute.
        case(
            "SELECT SUM(revenue) FROM sales WHERE dept = 'd1' AND ts >= ?",
            vec![Literal::Integer(3_000)],
            "SELECT SUM(revenue) FROM sales WHERE dept = 'd1' AND ts >= 3000",
        ),
        case(
            "SELECT AVG(revenue) FROM sales WHERE ts >= ?",
            vec![Literal::Integer(1_000)],
            "SELECT AVG(revenue) FROM sales WHERE ts >= 1000",
        ),
        case("SELECT MIN(ts) FROM sales", vec![], "SELECT MIN(ts) FROM sales"),
        case(
            "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
            vec![],
            "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
        ),
    ];
    assert_cases_across_targets("sales", &client, &server, &cases);
}

/// Group inflation produces inflated (suffixed) group keys on the server;
/// prepared execution must keep the exact same inflated shape so the proxy's
/// de-inflation sees identical input.
#[test]
fn inflated_group_by_prepared_equals_one_shot() {
    let (mut client, server, _) = sales_fixture();
    client.translate_options.expected_groups = Some(1);
    // Confirm the fixture really inflates.
    let (_, translated, _) = client
        .prepare(&server, "SELECT dept, SUM(revenue) FROM sales GROUP BY dept")
        .expect("prepare");
    assert!(translated.group_inflation > 1, "fixture must inflate groups");
    let cases = vec![
        case(
            "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
            vec![],
            "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
        ),
        case(
            "SELECT dept, SUM(revenue) FROM sales WHERE ts >= ? GROUP BY dept",
            vec![Literal::Integer(2_000)],
            "SELECT dept, SUM(revenue) FROM sales WHERE ts >= 2000 GROUP BY dept",
        ),
    ];
    assert_cases_across_targets("sales", &client, &server, &cases);
}

#[test]
fn ad_analytics_prepared_equals_one_shot_on_all_targets() {
    let mut rng = rand::rng();
    let dataset = ad_analytics::generate(&mut rng, 2_500);
    let queries = ad_analytics::performance_query_set(&mut rng);
    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if n == "measure00" || n == "measure01" {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let samples: Vec<Query> = queries.iter().map(|q| parse(&q.sql).expect("sample")).collect();
    let mut client = SeabedClient::create_plan(b"prep-ada", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 6, &mut rng);
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
    // The hourly aggregation with the window as bound parameters.
    let cases = vec![
        case(
            "SELECT hour, SUM(measure00) FROM ad_analytics WHERE hour >= ? AND hour < ? GROUP BY hour",
            vec![Literal::Integer(6), Literal::Integer(14)],
            "SELECT hour, SUM(measure00) FROM ad_analytics WHERE hour >= 6 AND hour < 14 GROUP BY hour",
        ),
        case(
            "SELECT SUM(measure01) FROM ad_analytics WHERE hour = ?",
            vec![Literal::Integer(3)],
            "SELECT SUM(measure01) FROM ad_analytics WHERE hour = 3",
        ),
    ];
    assert_cases_across_targets("ad_analytics", &client, &server, &cases);
}

#[test]
fn bdb_prepared_equals_one_shot_on_all_targets() {
    let mut rng = rand::rng();
    let tables = bdb::generate(&mut rng, 1_200, 2_000);
    let dataset = &tables.rankings;
    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if ["pageRank", "avgDuration"].contains(&n.as_str()) {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let samples: Vec<Query> = bdb::queries()
        .iter()
        .filter(|q| q.table == "rankings")
        .map(|q| parse(&q.sql).expect("sample"))
        .collect();
    let mut client = SeabedClient::create_plan(b"prep-bdb", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(dataset, 6, &mut rng);
    let server = SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)));
    let cases = vec![
        case(
            "SELECT SUM(avgDuration) FROM rankings WHERE pageRank > ?",
            vec![Literal::Integer(100)],
            "SELECT SUM(avgDuration) FROM rankings WHERE pageRank > 100",
        ),
        case(
            "SELECT COUNT(*) FROM rankings WHERE pageRank > ?",
            vec![Literal::Integer(500)],
            "SELECT COUNT(*) FROM rankings WHERE pageRank > 500",
        ),
    ];
    assert_cases_across_targets("rankings", &client, &server, &cases);
}

/// The statement cache amortizes across executions: one prepare, many
/// executes, and the remote path registers the statement on the server
/// exactly once.
#[test]
fn remote_prepared_statements_ship_only_bound_filters() {
    let (client, server, _) = sales_fixture();
    let net = NetServer::serve(
        SeabedServer::new(server.table().clone(), Cluster::new(ClusterConfig::with_workers(4))),
        "127.0.0.1:0",
        ServiceConfig::default(),
    )
    .expect("net server");
    let remote = RemoteSeabedClient::connect(net.local_addr(), client.clone()).expect("connect");
    let session = SeabedSession::single("sales", client, &remote);
    let prepared = session
        .prepare("SELECT SUM(revenue) FROM sales WHERE ts >= ?")
        .expect("prepare");
    let baseline = remote.wire_stats();
    for threshold in [0u64, 1_000, 5_000, 9_000] {
        session
            .execute(&prepared, &[Literal::Integer(threshold)])
            .expect("execute");
    }
    let after = remote.wire_stats();
    // 4 executions + exactly 1 statement registration crossed the wire.
    assert_eq!(after.requests - baseline.requests, 5);
    let stats = net.shutdown();
    assert_eq!(stats.statements_prepared, 1);
    assert_eq!(stats.requests_served, 4);
    assert_eq!(session.stats().executes, 4);
    assert_eq!(session.stats().statements_prepared, 1);
}

/// A session over a multi-table catalog resolves `FROM` per statement; an
/// unregistered table is a typed prepare-time error on every target.
#[test]
fn unknown_tables_fail_at_prepare_on_every_target() {
    use seabed_error::{SchemaError, SeabedError};
    let (client, server, _) = sales_fixture();
    let catalog = Catalog::new().with_table("sales", client.clone());

    let session = SeabedSession::new(catalog.clone(), &server);
    assert!(matches!(
        session.prepare("SELECT SUM(revenue) FROM ghosts"),
        Err(SeabedError::Schema(SchemaError::UnknownTable(_)))
    ));

    let net = NetServer::serve(
        SeabedServer::new(server.table().clone(), Cluster::new(ClusterConfig::with_workers(4))),
        "127.0.0.1:0",
        ServiceConfig::default(),
    )
    .expect("net server");
    let remote = RemoteSeabedClient::connect(net.local_addr(), client).expect("connect");
    let session = SeabedSession::new(catalog, &remote);
    assert!(matches!(
        session.prepare("SELECT SUM(revenue) FROM ghosts"),
        Err(SeabedError::Schema(SchemaError::UnknownTable(_)))
    ));
    net.shutdown();
}
