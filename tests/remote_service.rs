//! Integration tests for the `seabed-net` service layer: existing workloads
//! must run unchanged — and produce byte-identical decrypted results — when
//! the proxy talks to the server over a real TCP socket instead of an
//! in-process call.

use seabed::core::{PlainDataset, ResultValue, SeabedClient, SeabedServer};
use seabed::engine::{Cluster, ClusterConfig, NetworkModel};
use seabed::error::SeabedError;
use seabed::net::{NetServer, RemoteSeabedClient, ServiceConfig};
use seabed::query::{parse, ColumnSpec, PlannerConfig, Query};
use seabed::workloads::ad_analytics;

/// The rich-filter fixture of the core client tests: SPLASHE country, OPE
/// timestamp, DET group-by department — every `ServerFilter` variant crosses
/// the wire at least once.
fn sales_fixture() -> (SeabedClient, seabed::core::EncryptedTable) {
    let countries = [
        "USA", "USA", "Canada", "USA", "Canada", "India", "Chile", "India", "USA", "Canada",
    ];
    let n = 400usize;
    let dataset = PlainDataset::new("sales")
        .with_text_column(
            "country",
            (0..n).map(|i| countries[i % countries.len()].to_string()).collect(),
        )
        .with_uint_column("revenue", (0..n as u64).map(|i| (i * 7) % 1000).collect())
        .with_uint_column("ts", (0..n as u64).collect())
        .with_text_column("dept", (0..n).map(|i| ["a", "b", "c"][i % 3].to_string()).collect());
    let distribution = dataset.distribution("country").expect("country column exists");
    let columns = vec![
        ColumnSpec::sensitive_with_distribution("country", distribution),
        ColumnSpec::sensitive("revenue"),
        ColumnSpec::sensitive("ts"),
        ColumnSpec::sensitive("dept"),
    ];
    let queries: Vec<Query> = [
        "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
        "SELECT SUM(revenue) FROM sales WHERE ts >= 3",
        "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
        "SELECT VARIANCE(revenue) FROM sales",
        "SELECT MIN(ts), MAX(ts) FROM sales",
    ]
    .iter()
    .map(|sql| parse(sql).expect("fixture query must parse"))
    .collect();
    let mut client = SeabedClient::create_plan(b"remote-it", &columns, &queries, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 8, &mut rand::rng());
    (client, encrypted)
}

fn local_server(encrypted: &seabed::core::EncryptedTable) -> SeabedServer {
    SeabedServer::new(encrypted.table.clone(), Cluster::new(ClusterConfig::with_workers(8)))
}

const SALES_QUERIES: [&str; 8] = [
    "SELECT SUM(revenue) FROM sales",
    "SELECT SUM(revenue) FROM sales WHERE country = 'USA'",
    "SELECT SUM(revenue) FROM sales WHERE country = 'India'",
    "SELECT SUM(revenue) FROM sales WHERE ts >= 100",
    "SELECT COUNT(*) FROM sales WHERE ts < 42",
    "SELECT dept, SUM(revenue) FROM sales GROUP BY dept",
    "SELECT AVG(revenue) FROM sales",
    "SELECT VARIANCE(revenue) FROM sales",
];

#[test]
fn remote_results_are_identical_to_in_process_results() {
    let (client, encrypted) = sales_fixture();
    let in_process = local_server(&encrypted);
    let net = NetServer::serve(local_server(&encrypted), "127.0.0.1:0", ServiceConfig::default()).expect("serve");
    let remote = RemoteSeabedClient::connect(net.local_addr(), client.clone()).expect("connect");

    for sql in SALES_QUERIES {
        let local = client.query(&in_process, sql).expect("in-process query");
        let over_wire = remote.query(sql).expect("remote query");
        assert_eq!(local.rows, over_wire.rows, "results diverged for {sql}");
        assert_eq!(
            local.result_bytes, over_wire.result_bytes,
            "result size diverged for {sql}"
        );
        assert_eq!(
            local.client_prf_evals, over_wire.client_prf_evals,
            "decryption work diverged for {sql}"
        );
    }

    let stats = net.shutdown();
    assert_eq!(stats.requests_served, SALES_QUERIES.len() as u64);
    assert_eq!(stats.error_frames, 0);
}

#[test]
fn ad_analytics_workload_runs_unchanged_over_the_socket() {
    let mut rng = rand::rng();
    let rows = 2_000;
    let dataset = ad_analytics::generate(&mut rng, rows);
    let queries = ad_analytics::performance_query_set(&mut rng);
    let specs: Vec<ColumnSpec> = dataset
        .columns
        .iter()
        .map(|(n, _)| {
            if n == "measure00" || n == "measure01" {
                ColumnSpec::sensitive(n)
            } else {
                ColumnSpec::public(n)
            }
        })
        .collect();
    let samples: Vec<Query> = queries.iter().map(|q| parse(&q.sql).expect("workload query")).collect();
    let mut client = SeabedClient::create_plan(b"ada-remote", &specs, &samples, &PlannerConfig::default());
    let encrypted = client.encrypt_dataset(&dataset, 8, &mut rng);

    let in_process = local_server(&encrypted);
    let net = NetServer::serve(local_server(&encrypted), "127.0.0.1:0", ServiceConfig::default()).expect("serve");
    let remote = RemoteSeabedClient::connect(net.local_addr(), client.clone()).expect("connect");

    for q in queries.iter().take(6) {
        let local = client.query(&in_process, &q.sql).expect("in-process query");
        let over_wire = remote.query(&q.sql).expect("remote query");
        assert_eq!(local.rows, over_wire.rows, "results diverged for {}", q.sql);
        // Sanity: the hourly group-by actually returns data.
        assert!(!over_wire.rows.is_empty(), "no groups for {}", q.sql);
        for row in &over_wire.rows {
            assert!(matches!(row[0], ResultValue::UInt(h) if h < 24));
        }
    }
    net.shutdown();
}

#[test]
fn concurrent_clients_all_get_correct_results() {
    let (client, encrypted) = sales_fixture();
    let in_process = local_server(&encrypted);
    let expected: Vec<_> = SALES_QUERIES
        .iter()
        .map(|sql| client.query(&in_process, sql).expect("in-process query").rows)
        .collect();

    let clients = 8usize;
    let net = NetServer::serve(
        local_server(&encrypted),
        "127.0.0.1:0",
        ServiceConfig::default().worker_threads(clients),
    )
    .expect("serve");
    let addr = net.local_addr();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|worker| {
                let proxy = client.clone();
                let expected = &expected;
                scope.spawn(move || {
                    let remote = RemoteSeabedClient::connect(addr, proxy).expect("connect");
                    // Each worker walks the query list from a different offset
                    // so distinct queries are in flight simultaneously.
                    for i in 0..SALES_QUERIES.len() * 2 {
                        let q = (worker + i) % SALES_QUERIES.len();
                        let result = remote.query(SALES_QUERIES[q]).expect("remote query");
                        assert_eq!(
                            result.rows, expected[q],
                            "client {worker} diverged on {}",
                            SALES_QUERIES[q]
                        );
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread panicked");
        }
    });

    let stats = net.shutdown();
    assert_eq!(stats.connections, clients as u64);
    assert_eq!(stats.requests_served, (clients * SALES_QUERIES.len() * 2) as u64);
    assert_eq!(stats.error_frames, 0);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
}

#[test]
fn query_errors_cross_the_wire_typed_and_do_not_kill_the_connection() {
    let (client, encrypted) = sales_fixture();
    let net = NetServer::serve(local_server(&encrypted), "127.0.0.1:0", ServiceConfig::default()).expect("serve");
    let remote = RemoteSeabedClient::connect(net.local_addr(), client).expect("connect");

    // Malformed SQL fails locally, before anything is sent.
    assert!(matches!(remote.query("not sql at all"), Err(SeabedError::Parse(_))));
    // An unknown column passes translation against the *plan* but must be
    // rejected — the error arrives as a typed frame from the server side when
    // the plan and schema disagree, or from local preparation; either way the
    // connection survives.
    assert!(remote.query("SELECT SUM(no_such_column) FROM sales").is_err());
    // A filter the encryption scheme cannot support -> Translate.
    assert!(matches!(
        remote.query("SELECT COUNT(*) FROM sales WHERE revenue = 10"),
        Err(SeabedError::Translate(_))
    ));
    // A forged filter shipped straight to the server: engine error over the
    // wire, typed, connection still alive.
    let (_, translated, _) = remote.prepare("SELECT SUM(revenue) FROM sales").expect("prepare");
    let forged = vec![seabed::core::PhysicalFilter::PlainU64 {
        column: 9_999,
        op: seabed::query::CompareOp::Eq,
        value: 1,
    }];
    assert!(matches!(
        remote.execute(&translated, &forged),
        Err(SeabedError::Engine(_))
    ));
    // The same connection keeps serving.
    let result = remote.query("SELECT SUM(revenue) FROM sales").expect("follow-up query");
    assert_eq!(result.rows.len(), 1);

    let stats = net.shutdown();
    assert!(stats.error_frames >= 1, "typed error frames must be accounted");
}

/// §6.6 unification: the byte counts the TCP layer *measures* feed the
/// [`NetworkModel`] the engine previously only simulated with. Compressed ID
/// lists keep the response frame so small that even the 10 Mbps WAN link's
/// serialization cost stays negligible next to its RTT — the paper's claim,
/// reproduced with real bytes on a real wire.
#[test]
fn measured_wire_bytes_cross_check_the_network_model() {
    let (client, encrypted) = sales_fixture();
    let rows = encrypted.table.num_rows();
    let net = NetServer::serve(local_server(&encrypted), "127.0.0.1:0", ServiceConfig::default()).expect("serve");
    let remote = RemoteSeabedClient::connect(net.local_addr(), client).expect("connect");

    // 100 % selectivity: every row id is in the ASHE ID list.
    let result = remote.query("SELECT SUM(revenue) FROM sales").expect("query");
    let wire = remote.wire_stats();
    let measured = wire.last_response_bytes as usize;
    assert!(wire.bytes_received > 0 && wire.bytes_sent > 0);
    // The frame that actually crossed the wire carries the encrypted result
    // (plus fixed framing/stats overhead): it cannot be smaller than the
    // payload the server accounted, and the overhead is bounded.
    assert!(
        measured >= result.result_bytes,
        "frame ({measured} B) smaller than the result it carries ({} B)",
        result.result_bytes
    );
    assert!(
        measured < result.result_bytes + 512,
        "framing overhead exploded: {measured} B for a {} B result",
        result.result_bytes
    );

    // A naive uncompressed ID list would ship 8 bytes per selected row.
    let uncompressed = rows * 8;
    assert!(
        measured * 10 < uncompressed,
        "compressed response ({measured} B) should be far below uncompressed ({uncompressed} B)"
    );

    for model in [
        NetworkModel::datacenter(),
        NetworkModel::wan_100mbps(),
        NetworkModel::wan_10mbps(),
    ] {
        // Prediction from real bytes: serialization time of the measured
        // frame stays under a millisecond on every §6.6 preset, so the WAN
        // penalty is (almost) pure RTT...
        let serialization = model.transfer_time(measured) - model.rtt;
        assert!(
            serialization < std::time::Duration::from_millis(2),
            "serialization of {measured} B should be negligible on {model:?}"
        );
        // ...while the uncompressed list would add real transfer time on the
        // degraded links.
        assert!(model.transfer_time(uncompressed) >= model.transfer_time(measured));
    }
    // And the remote client's reported network timing is exactly the model
    // applied to the measured frame.
    assert_eq!(result.timings.network, remote.client().network.transfer_time(measured));
    net.shutdown();
}
